//! Criterion benches of the simulated cluster's collectives — the
//! communication substrate of Algorithm 1 (gradient allreduce) and
//! Algorithm 2 (halo exchange).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mf_dist::Cluster;

fn bench_allreduce(c: &mut Criterion) {
    let mut group = c.benchmark_group("ring_allreduce");
    group.sample_size(10);
    for &(ranks, len) in &[(2usize, 1024usize), (4, 1024), (4, 65536), (8, 65536)] {
        group.throughput(Throughput::Bytes((len * 8) as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("p{ranks}_n{len}")),
            &(ranks, len),
            |bch, &(ranks, len)| {
                bch.iter(|| {
                    Cluster::run(ranks, |comm| {
                        let mut buf = vec![comm.rank() as f64; len];
                        comm.allreduce_mean(&mut buf);
                        buf[0]
                    })
                });
            },
        );
    }
    group.finish();
}

fn bench_halo_exchange(c: &mut Criterion) {
    let mut group = c.benchmark_group("halo_exchange");
    group.sample_size(10);
    for &(ranks, len) in &[(4usize, 256usize), (9, 256), (9, 4096)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("p{ranks}_n{len}")),
            &(ranks, len),
            |bch, &(ranks, len)| {
                bch.iter(|| {
                    Cluster::run(ranks, |comm| {
                        // All-pairs exchange as an upper bound on the
                        // 8-neighbor stencil.
                        let peers: Vec<(usize, Vec<f64>)> = (0..ranks)
                            .filter(|&p| p != comm.rank())
                            .map(|p| (p, vec![1.0; len]))
                            .collect();
                        comm.exchange(&peers, 0).len()
                    })
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_allreduce, bench_halo_exchange);
criterion_main!(benches);
