//! Criterion benches of the Mosaic Flow predictor iteration (Fig. 8's
//! kernel) and the multigrid ground-truth solver it is compared against.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mf_bench::{bench_net_config, bench_spec, gp_boundary};
use mf_mfp::{DomainSpec, Mfp, MfpConfig, NeuralSolver, OracleSolver};
use mf_nn::SdNet;
use mf_numerics::boundary::grid_with_boundary;
use mf_numerics::{solve_multigrid, MultigridOpts, Poisson};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn bench_mfp_iteration(c: &mut Criterion) {
    let spec = bench_spec();
    let net = SdNet::new(bench_net_config(spec), &mut ChaCha8Rng::seed_from_u64(0));
    let solver = NeuralSolver::new(net, spec);
    let mut group = c.benchmark_group("mfp_iteration");
    group.sample_size(10);
    for &(sx, sy) in &[(2usize, 2usize), (4, 4)] {
        let domain = DomainSpec::new(spec, sx, sy);
        let bc = gp_boundary(&domain, 0);
        let mfp = Mfp::new(&solver, domain);
        for batched in [false, true] {
            let label = if batched { "batched" } else { "unbatched" };
            let cfg = MfpConfig {
                max_iters: 1,
                tol: 0.0,
                batched,
                target: None,
                coarse_init: false,
            };
            group.bench_with_input(
                BenchmarkId::new(label, format!("{sx}x{sy}")),
                &cfg,
                |bch, cfg| {
                    bch.iter(|| mfp.run(&bc, cfg));
                },
            );
        }
    }
    group.finish();
}

fn bench_oracle_vs_neural(c: &mut Criterion) {
    let spec = bench_spec();
    let net = SdNet::new(bench_net_config(spec), &mut ChaCha8Rng::seed_from_u64(0));
    let neural = NeuralSolver::new(net, spec);
    let oracle = OracleSolver::new(spec, 1e-9);
    let domain = DomainSpec::new(spec, 2, 2);
    let bc = gp_boundary(&domain, 1);
    let cfg = MfpConfig {
        max_iters: 5,
        tol: 0.0,
        batched: true,
        target: None,
        coarse_init: false,
    };

    let mut group = c.benchmark_group("subdomain_solver");
    group.sample_size(10);
    group.bench_function("neural_5iters", |bch| {
        let mfp = Mfp::new(&neural, domain);
        bch.iter(|| mfp.run(&bc, &cfg));
    });
    group.bench_function("oracle_5iters", |bch| {
        let mfp = Mfp::new(&oracle, domain);
        bch.iter(|| mfp.run(&bc, &cfg));
    });
    group.finish();
}

fn bench_multigrid(c: &mut Criterion) {
    let mut group = c.benchmark_group("multigrid_vcycle_solve");
    group.sample_size(10);
    for n in [17usize, 33, 65] {
        let h = 1.0 / (n - 1) as f64;
        let bc = mf_numerics::boundary::boundary_from_fn(n, n, |t| {
            (2.0 * std::f64::consts::PI * t).sin()
        });
        let guess = grid_with_boundary(n, n, &bc);
        let p = Poisson::laplace(n, n, h);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bch, _| {
            bch.iter(|| solve_multigrid(&p, &guess, &MultigridOpts::default()));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_mfp_iteration,
    bench_oracle_vs_neural,
    bench_multigrid
);
criterion_main!(benches);
