//! Ablations of the design choices DESIGN.md calls out:
//!
//! 1. **coarse-grid initialization** (cited future work \[10\]/\[8\] of the
//!    paper) vs plain zero initialization — iterations to converge;
//! 2. **communication-avoiding** halo exchange (`comm_every = k`) —
//!    iterations vs bytes, the §5.3 "Open problems" tradeoff;
//! 3. **Morton vs row-scan rank placement** (§4.2's suggested future
//!    study) — neighbor rank distance and correctness;
//! 4. **convolutional boundary embedding vs none** (§3.1's architecture
//!    choice) — training convergence.
//!
//! ```text
//! cargo run -p mf-bench --release --bin repro_ablations [--full]
//! ```

use mf_bench::*;
use mf_data::Dataset;
use mf_dist::{CartesianGrid, RankOrder};
use mf_mfp::{run_distributed, DistMfpConfig, DomainSpec, Mfp, MfpConfig, OracleSolver};
use mf_nn::SdNet;
use mf_opt::LrSchedule;
use mf_train::trainer::{train_single, OptKind, TrainConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn ablate_coarse_init(spec: mf_data::SubdomainSpec) {
    let oracle = OracleSolver::new(spec, 1e-9);
    let sizes: &[(usize, usize)] = if full_scale() {
        &[(2, 2), (4, 4), (8, 8), (16, 16)]
    } else {
        &[(2, 2), (4, 4), (8, 8)]
    };
    let mut rows = Vec::new();
    for &(sx, sy) in sizes {
        let domain = DomainSpec::new(spec, sx, sy);
        let bc = gp_boundary(&domain, 5);
        let mfp = Mfp::new(&oracle, domain);
        let base = MfpConfig {
            max_iters: 5000,
            tol: 1e-7,
            ..Default::default()
        };
        let plain = mfp.run(&bc, &base);
        let coarse = mfp.run(
            &bc,
            &MfpConfig {
                coarse_init: true,
                ..base
            },
        );
        assert!(plain.converged && coarse.converged);
        rows.push(vec![
            format!("{}x{}", sx, sy),
            plain.iterations.to_string(),
            coarse.iterations.to_string(),
            format!("{:.2}x", plain.iterations as f64 / coarse.iterations as f64),
            format!("{:.1e}", plain.grid.mean_abs_diff(&coarse.grid)),
        ]);
    }
    print_table(
        "Ablation 1: coarse-grid initialization (one-level Schwarz fix)",
        &[
            "atomic domain",
            "plain iters",
            "coarse-init iters",
            "gain",
            "solution diff",
        ],
        &rows,
    );
    println!("(the gain grows with domain size: one-level Schwarz propagates boundary");
    println!(" information one subdomain per iteration, the coarse solve does it at once)");
}

fn ablate_comm_avoiding(spec: mf_data::SubdomainSpec) {
    let oracle = OracleSolver::new(spec, 1e-9);
    let domain = DomainSpec::new(spec, 4, 4);
    let bc = gp_boundary(&domain, 6);
    let mut rows = Vec::new();
    for k in [1usize, 2, 4, 8] {
        let res = run_distributed(
            &oracle,
            &domain,
            &bc,
            4,
            &DistMfpConfig {
                max_iters: 3000,
                tol: 1e-7,
                comm_every: k,
                check_every: 1,
                ..Default::default()
            },
        );
        assert!(res.converged, "comm_every={k} did not converge");
        let halo_bytes: usize = res.reports.iter().map(|r| r.halo.bytes_sent).sum();
        let halo_msgs: usize = res.reports.iter().map(|r| r.halo.msgs_sent).sum();
        rows.push(vec![
            k.to_string(),
            res.iterations.to_string(),
            halo_msgs.to_string(),
            format!("{:.1} KB", halo_bytes as f64 / 1e3),
        ]);
    }
    print_table(
        "Ablation 2: communication-avoiding halo exchange (4 ranks)",
        &[
            "exchange every",
            "iterations",
            "total msgs",
            "total halo bytes",
        ],
        &rows,
    );
    println!("(skipping exchanges trades extra iterations for less traffic — the");
    println!(" latency-vs-redundancy tradeoff of §5.3 'Open problems')");
}

fn ablate_rank_order() {
    let mut rows = Vec::new();
    for p in [16usize, 64] {
        let metric = |order: RankOrder| {
            let g = CartesianGrid::square_for(p, order);
            let mut total = 0usize;
            let mut count = 0usize;
            for rank in 0..g.size() {
                for (_, nb) in g.neighbors(rank) {
                    total += rank.abs_diff(nb);
                    count += 1;
                }
            }
            total as f64 / count as f64
        };
        rows.push(vec![
            p.to_string(),
            format!("{:.2}", metric(RankOrder::RowMajor)),
            format!("{:.2}", metric(RankOrder::Morton)),
        ]);
    }
    print_table(
        "Ablation 3: rank placement locality (mean |rank - neighbor rank|)",
        &["ranks", "row-scan", "Morton"],
        &rows,
    );
    println!("(§4.2 suggests space-filling-curve placement; lower rank distance means");
    println!(" neighbors are more likely to share a node in a real cluster)");
}

fn ablate_conv_embedding(spec: mf_data::SubdomainSpec) {
    let samples = if full_scale() { 320 } else { 160 };
    let epochs = if full_scale() { 60 } else { 30 };
    let dataset = Dataset::generate(spec, samples, 0);
    let (train, val) = dataset.split(0.9);
    let cfg = TrainConfig {
        epochs,
        batch_size: 8,
        qd: 48,
        qc: 16,
        pde_weight: 0.02,
        schedule: LrSchedule {
            max_lr: 8e-3,
            ..LrSchedule::paper_default(epochs * (train.len() / 8))
        },
        opt: OptKind::Adam,
        seed: 0,
        clip_norm: None,
    };
    let mut rows = Vec::new();
    for (label, channels) in [
        ("conv embedding", vec![4]),
        ("no conv (raw boundary)", vec![]),
    ] {
        let mut netcfg = bench_net_config(spec);
        netcfg.conv_channels = channels;
        let mut net = SdNet::new(netcfg, &mut ChaCha8Rng::seed_from_u64(0));
        let logs = train_single(&mut net, &train, &val, &cfg);
        let half = &logs[logs.len() / 2];
        let last = logs.last().unwrap();
        rows.push(vec![
            label.to_string(),
            net.count_params().to_string(),
            format!("{:.5}", half.val_mse),
            format!("{:.5}", last.val_mse),
        ]);
    }
    print_table(
        "Ablation 4: convolutional boundary embedding (SDNet, same budget)",
        &["variant", "params", "val MSE @ half", "val MSE final"],
        &rows,
    );
    println!("(§3.1: convolving the boundary curve captures local structure and");
    println!(" improves convergence at negligible per-iteration cost)");
}

fn main() {
    let trace = init_telemetry();
    let spec = bench_spec();
    println!("Design-choice ablations (see DESIGN.md)");
    ablate_coarse_init(spec);
    ablate_comm_avoiding(spec);
    ablate_rank_order();
    ablate_conv_embedding(spec);
    finish_trace(trace);
}
