//! **Fault sweep**: distributed MFP resilience under injected message
//! faults — the recovery counterpart of the paper's scaling figures.
//!
//! Three sections:
//!
//! 1. a collective microbenchmark per fault seed (messages dropped,
//!    duplicated, retransmissions) showing the deterministic fault
//!    stream,
//! 2. the residual-vs-drop-rate sweep: the 4-rank MFP run repeated at
//!    increasing drop rates. Retransmission recovers every payload
//!    bitwise, so the residual trajectory must match the fault-free run
//!    to well below 1e-6 at every drop rate,
//! 3. degraded mode: sender delays beyond the halo deadline force stale
//!    halo reuse; the run still converges to the same fixed point.
//!
//! ```text
//! cargo run -p mf-bench --release --bin repro_fault_sweep \
//!     [--fault-seed N] [--drop-rate R] [--full]
//! ```
//!
//! `--drop-rate R` replaces the default sweep `{0, 0.05, 0.10, 0.20}`
//! with the single rate `R`; `--fault-seed N` seeds every fault stream
//! (default 42).

use mf_bench::*;
use mf_dist::{Cluster, FaultPlan, RetryPolicy};
use mf_mfp::{try_run_distributed, DistMfpConfig, DomainSpec, OracleSolver};
use mf_numerics::boundary::boundary_from_fn;
use mf_telemetry::counter;
use std::time::Duration;

fn flag_value(name: &str) -> Option<String> {
    std::env::args().skip_while(|a| a != name).nth(1)
}

fn fast_retry() -> RetryPolicy {
    RetryPolicy {
        timeout: Duration::from_millis(20),
        max_retries: 200,
    }
}

fn main() {
    let trace = init_telemetry();
    let seed: u64 = flag_value("--fault-seed")
        .map(|s| s.parse().expect("--fault-seed expects an integer"))
        .unwrap_or(42);
    let drop_rates: Vec<f64> = match flag_value("--drop-rate") {
        Some(s) => vec![s.parse().expect("--drop-rate expects a float")],
        None => vec![0.0, 0.05, 0.10, 0.20],
    };
    let ranks = 4;

    println!("Fault-injection sweep (seed {seed}, {ranks} ranks)\n");

    // Section 1: deterministic fault stream on a collective workload.
    let mut rows = Vec::new();
    for rate in &drop_rates {
        let plan = FaultPlan {
            dup_rate: rate / 2.0,
            retry: fast_retry(),
            ..FaultPlan::lossy(seed, *rate)
        };
        let stats = Cluster::try_run(ranks, plan, |c| {
            let mut buf = vec![c.rank() as f64; 256];
            for _ in 0..4 {
                c.allreduce_sum(&mut buf);
            }
            (
                c.stats().msgs_sent,
                counter("fault.dropped").get(),
                counter("fault.duplicated").get(),
                counter("fault.retries").get(),
            )
        })
        .expect("collective workload failed");
        let sent: usize = stats.iter().map(|s| s.0).sum();
        let dropped: u64 = stats.iter().map(|s| s.1).sum();
        let duped: u64 = stats.iter().map(|s| s.2).sum();
        let retries: u64 = stats.iter().map(|s| s.3).sum();
        rows.push(vec![
            format!("{rate:.2}"),
            sent.to_string(),
            dropped.to_string(),
            duped.to_string(),
            retries.to_string(),
        ]);
    }
    print_table(
        "collectives under faults (4 allreduces of 256 f64)",
        &[
            "drop rate",
            "logical msgs",
            "dropped",
            "duplicated",
            "retries",
        ],
        &rows,
    );

    // Section 2: MFP residual trajectory vs drop rate.
    let spec = bench_spec();
    let (sx, sy) = if full_scale() { (4, 2) } else { (2, 2) };
    let domain = DomainSpec::new(spec, sx, sy);
    let oracle = OracleSolver::new(spec, 1e-10);
    let bc = boundary_from_fn(domain.ny(), domain.nx(), |t| {
        (2.0 * std::f64::consts::PI * t).sin()
    });
    let base = DistMfpConfig {
        max_iters: if full_scale() { 400 } else { 120 },
        tol: 1e-8,
        ..Default::default()
    };
    let clean =
        try_run_distributed(&oracle, &domain, &bc, ranks, &base).expect("fault-free run failed");
    println!(
        "\nfault-free reference: {} iterations, final residual {:.3e}\n",
        clean.iterations,
        clean.deltas.last().copied().unwrap_or(0.0)
    );

    let mut rows = Vec::new();
    for rate in &drop_rates {
        let cfg = DistMfpConfig {
            plan: FaultPlan {
                retry: fast_retry(),
                ..FaultPlan::lossy(seed, *rate)
            },
            ..base.clone()
        };
        let run =
            try_run_distributed(&oracle, &domain, &bc, ranks, &cfg).expect("faulty run failed");
        let max_dev = clean
            .deltas
            .iter()
            .zip(&run.deltas)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        rows.push(vec![
            format!("{rate:.2}"),
            run.iterations.to_string(),
            format!("{:.3e}", run.deltas.last().copied().unwrap_or(0.0)),
            format!("{max_dev:.1e}"),
            if max_dev < 1e-6 { "yes" } else { "NO" }.to_string(),
        ]);
    }
    print_table(
        "MFP residual vs drop rate (retransmission recovery)",
        &[
            "drop rate",
            "iterations",
            "final residual",
            "max |Δ| vs clean",
            "within 1e-6",
        ],
        &rows,
    );

    // Section 3: degraded mode — stale halo reuse under delays.
    let degraded_cfg = DistMfpConfig {
        plan: FaultPlan {
            seed,
            delay_rate: 0.4,
            delay_max_us: 30_000,
            ..FaultPlan::none()
        },
        degraded_halos: true,
        halo_timeout: Duration::from_millis(8),
        ..base.clone()
    };
    let degraded = try_run_distributed(&oracle, &domain, &bc, ranks, &degraded_cfg)
        .expect("degraded run failed");
    let stale: usize = degraded.reports.iter().map(|r| r.stale_halos).sum();
    println!(
        "\ndegraded mode: {} iterations ({} stale halo slots), solution MAE vs clean {:.3e}",
        degraded.iterations,
        stale,
        degraded.grid.mean_abs_diff(&clean.grid)
    );

    finish_trace(trace);
}
