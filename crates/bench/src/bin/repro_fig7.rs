//! **Figure 7**: MFP accuracy using SDNets trained with different device
//! counts, on growing domains with boundary `ĝ(t) = sin(2πt)`.
//!
//! The paper's claim: the small validation-MSE differences between models
//! trained on 1..32 GPUs (Fig 6) do **not** translate into MFP accuracy
//! differences — the MAE curves for all models coincide. This binary
//! trains models with 1, 2 and 4 simulated devices and runs each as the
//! MFP subdomain solver on domains of increasing size.
//!
//! ```text
//! cargo run -p mf-bench --release --bin repro_fig7 [--full]
//! ```

use mf_bench::*;
use mf_data::Dataset;
use mf_mfp::{DomainSpec, Mfp, MfpConfig, NeuralSolver};
use mf_nn::SdNet;
use mf_numerics::boundary::boundary_from_fn;
use mf_opt::LrSchedule;
use mf_train::trainer::{train_ddp, OptKind, TrainConfig};
use mf_train::GradSync;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let trace = init_telemetry();
    let spec = bench_spec();
    let (samples, epochs) = if full_scale() { (800, 150) } else { (320, 80) };
    let device_counts = [1usize, 2, 4];
    let domains: Vec<(usize, usize)> = if full_scale() {
        vec![(1, 1), (2, 1), (2, 2), (4, 2), (4, 4)]
    } else {
        vec![(1, 1), (2, 1), (2, 2)]
    };

    println!("Figure 7 reproduction: MFP MAE with models trained on varying device counts");
    println!("boundary: g(t) = sin(2*pi*t) along the domain walk\n");

    let dataset = Dataset::generate(spec, samples, 0);
    let (train, val) = dataset.split(0.9);
    let template = SdNet::new(bench_net_config(spec), &mut ChaCha8Rng::seed_from_u64(0));
    let cfg = TrainConfig {
        epochs,
        batch_size: 8,
        qd: 48,
        qc: 16,
        pde_weight: 0.02,
        schedule: LrSchedule {
            max_lr: 6e-3,
            ..LrSchedule::paper_default(epochs * (train.len() / 8))
        },
        opt: OptKind::Lamb(0.0),
        seed: 0,
        clip_norm: None,
    };

    // Train one model per device count.
    let mut models: Vec<(usize, SdNet, f64)> = Vec::new();
    for &p in &device_counts {
        let res = train_ddp(p, &template, &train, &val, &cfg, GradSync::Fused);
        let mut net = template.clone();
        net.params.unflatten(&res.params_flat);
        let mse = res.logs.last().unwrap().val_mse;
        println!("trained with P={p}: final val MSE {mse:.5}");
        models.push((p, net, mse));
    }

    // Evaluate each model as the MFP subdomain solver on each domain.
    let mut rows = Vec::new();
    for &(sx, sy) in &domains {
        let domain = DomainSpec::new(spec, sx, sy);
        let bc = boundary_from_fn(domain.ny(), domain.nx(), |t| {
            (2.0 * std::f64::consts::PI * t).sin()
        });
        let reference = reference_solution(&domain, &bc);
        let mut row = vec![format!(
            "{}x{}",
            sx as f64 * spec.spatial,
            sy as f64 * spec.spatial
        )];
        for (_, net, _) in &models {
            let solver = NeuralSolver::new(net.clone(), spec);
            let res = Mfp::new(&solver, domain).run(
                &bc,
                &MfpConfig {
                    max_iters: 200,
                    tol: 1e-5,
                    ..Default::default()
                },
            );
            row.push(format!("{:.4}", res.grid.mean_abs_diff(&reference)));
        }
        rows.push(row);
    }
    let header: Vec<String> = std::iter::once("domain".to_string())
        .chain(device_counts.iter().map(|p| format!("MAE (P={p})")))
        .collect();
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    print_table("Fig 7: MFP MAE per trained model", &header_refs, &rows);

    // Spread across models should be small relative to the MAE itself.
    println!(
        "\nshape check vs paper: the MAE columns agree closely for every domain\n\
         size — models trained with different device counts are equally good\n\
         subdomain solvers, despite their small validation-MSE differences."
    );
    finish_trace(trace);
}
