//! **MFP solve throughput**: compiled inference plan vs graph-based
//! solver on the MFP hot path.
//!
//! The MFP's inner loop launches the subdomain solver on one sweep
//! group's boundaries against a *fixed* set of query points (the center
//! cross). The graph path rebuilds the tape — including the query-point
//! Fourier features and the `W_x · X` half of the input-split layer —
//! on every launch; the compiled plan (`mf-infer`) caches both per point
//! set and replays a flat list of fused kernels over pooled workspaces.
//! This binary measures both on the same warm workload and gates:
//!
//! * `infer.pts_per_s` — compiled-plan solve throughput,
//! * `infer.speedup_vs_graph` — must stay ≥ 3× (machine-independent),
//! * `infer.warm_allocs` — pool misses after warmup; must be 0.
//!
//! ```text
//! cargo run -p mf-bench --release --bin repro_mfp_throughput [--json out.json]
//! ```

use mf_bench::gate::Metric;
use mf_bench::*;
use mf_data::SubdomainSpec;
use mf_mfp::{NeuralSolver, PlanSolver, SubdomainSolver};
use mf_nn::{SdNet, SdNetConfig};
use mf_tensor::Tensor;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::time::Instant;

/// Center-cross query points of a subdomain: the interior of the middle
/// row and middle column, center counted once — `2(m-2)-1` points, the
/// exact set the MFP sweeps evaluate.
fn cross_points(spec: SubdomainSpec) -> Tensor {
    let m = spec.m;
    let h = spec.spatial / (m - 1) as f64;
    let c = (m - 1) / 2;
    let mut pts = Vec::new();
    for i in 1..m - 1 {
        pts.push(i as f64 * h);
        pts.push(c as f64 * h);
    }
    for j in 1..m - 1 {
        if j == c {
            continue;
        }
        pts.push(c as f64 * h);
        pts.push(j as f64 * h);
    }
    Tensor::from_vec(2 * (m - 2) - 1, 2, pts)
}

fn warm_allocs_counter() -> u64 {
    mf_telemetry::snapshot()
        .metrics
        .iter()
        .find_map(|(n, v)| match (n.as_str(), v) {
            ("infer.warm_allocs", mf_telemetry::MetricValue::Counter(c)) => Some(*c),
            _ => None,
        })
        .unwrap_or(0)
}

fn main() {
    let trace = init_telemetry();
    let spec = SubdomainSpec { m: 9, spatial: 0.5 };
    // The MFP-iteration regime: a narrow trunk keeps the shared GEMM work
    // small relative to the per-launch graph overhead the plan removes
    // (tape bookkeeping, query-point Fourier features, the W_x·X GEMM).
    let mut cfg = SdNetConfig::small(spec.boundary_len());
    cfg.conv_channels = vec![2];
    cfg.hidden = vec![16];
    cfg.coord_fourier = 16;
    let net = SdNet::new(cfg, &mut ChaCha8Rng::seed_from_u64(7));

    let b = 16; // one sweep group's worth of subdomains
    let pts = cross_points(spec);
    let q = pts.rows();
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let bnds = Tensor::from_fn(b, spec.boundary_len(), |_, _| rng.gen_range(-1.0..1.0));

    let graph = NeuralSolver::new(net.clone(), spec);
    let plan = PlanSolver::new(net, spec);

    // Both paths must produce identical bits before any timing matters.
    let expect = graph.solve_batch(&bnds, &pts);
    let got = plan.solve_batch(&bnds, &pts);
    for (e, g) in expect.as_slice().iter().zip(got.as_slice()) {
        assert_eq!(e.to_bits(), g.to_bits(), "plan diverged from graph path");
    }

    let launches = if full_scale() { 800 } else { 150 };
    let time = |f: &dyn Fn()| {
        let t0 = Instant::now();
        for _ in 0..launches {
            f();
        }
        (b * q * launches) as f64 / t0.elapsed().as_secs_f64()
    };
    let run_graph = || {
        graph.solve_batch(&bnds, &pts);
    };
    let run_plan = || {
        plan.solve_batch(&bnds, &pts);
    };
    for _ in 0..10 {
        run_graph(); // warm the thread-local graph and the plan's pools
        run_plan();
    }

    // Shared-core CI machines drift mid-run; interleaving the two paths
    // and taking the median per-round ratio makes the gated speedup
    // insensitive to when the noise lands.
    let rounds = 7;
    let allocs_before = warm_allocs_counter();
    let mut ratios = Vec::with_capacity(rounds);
    let mut graph_pps: f64 = 0.0;
    let mut plan_pps: f64 = 0.0;
    for _ in 0..rounds {
        let g = time(&run_graph);
        let p = time(&run_plan);
        graph_pps = graph_pps.max(g);
        plan_pps = plan_pps.max(p);
        ratios.push(p / g);
    }
    let warm_allocs = warm_allocs_counter() - allocs_before;
    ratios.sort_by(|a, b| a.total_cmp(b));
    let speedup = ratios[rounds / 2];

    println!("MFP solve throughput (B={b} boundaries x q={q} cross points, warm):");
    println!(
        "  graph solver:    {:>10.0} pts/s (best of {rounds} rounds)",
        graph_pps
    );
    println!(
        "  compiled plan:   {:>10.0} pts/s (best of {rounds} rounds)",
        plan_pps
    );
    println!("  speedup:         {speedup:>10.2}x (median per-round ratio)");
    println!("  warm pool misses: {warm_allocs}");
    assert_eq!(warm_allocs, 0, "compiled plan allocated on a warm launch");

    emit_metrics(&[
        (
            "infer.pts_per_s".to_string(),
            Metric {
                value: plan_pps,
                tol: 0.5,
                higher_better: true,
            },
        ),
        (
            "infer.speedup_vs_graph".to_string(),
            Metric {
                value: speedup,
                tol: 0.25,
                higher_better: true,
            },
        ),
        (
            "infer.warm_allocs".to_string(),
            Metric {
                value: warm_allocs as f64,
                tol: 0.0,
                higher_better: false,
            },
        ),
    ]);
    finish_trace(trace);
}
