//! **Table 3**: autograd-graph memory during a training step, with and
//! without the PDE loss, as the number of domains (boundary conditions per
//! batch) grows.
//!
//! The paper measures 0.05 GB → 0.503 GB at 5 domains and OOM at 640
//! domains on a 16 GB V100 once the PDE loss is enabled. Here the arena
//! graph meters its bytes exactly, so the same blowup is reported
//! per-domain-count, together with the extrapolated domain count that
//! would exhaust a 16 GB device.
//!
//! ```text
//! cargo run -p mf-bench --release --bin repro_table3 [--full]
//! ```

use mf_autodiff::Graph;
use mf_bench::gate::Metric;
use mf_bench::*;
use mf_data::{Batch, BatchSampler, Dataset};
use mf_nn::SdNet;
use mf_train::{
    data_loss, local_gradients, measure_step_memory, pde_loss, set_checkpointed_segments,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// One training step the way `main` ran it before the allocation-lean
/// hot path: a fresh legacy graph per pass, allocate-add-replace adjoint
/// accumulation, unfused VJP chains, no buffer pool. Returns
/// `(peak_bytes, heap_allocs)` with the same per-pass-max / summed
/// semantics as `StepStats`.
fn legacy_step(net: &SdNet, batch: &Batch) -> (usize, u64) {
    let mut peak = 0usize;
    let mut allocs = 0u64;
    for pass in 0..2 {
        let mut g = Graph::new_legacy();
        let bound = net.params.bind(&mut g);
        let loss = if pass == 0 {
            data_loss(&mut g, net, &bound, batch)
        } else {
            pde_loss(&mut g, net, &bound, batch)
        };
        let _ = g.grad(loss, bound.all_vars());
        peak = peak.max(g.peak_bytes());
        allocs += g.heap_allocs();
    }
    (peak, allocs)
}

fn main() {
    let trace = init_telemetry();
    let spec = bench_spec();
    let domain_counts: Vec<usize> = if full_scale() {
        vec![1, 2, 5, 10, 20, 40, 80]
    } else {
        vec![1, 2, 5, 10, 20]
    };
    let max_domains = *domain_counts.last().unwrap();

    println!("Table 3 reproduction: autograd memory vs batch domain count");
    println!("(paper: 5 domains = 0.05 GB / 0.503 GB; 640 domains OOM on 16 GB V100)");

    let ds = Dataset::generate(spec, max_domains, 0);
    let net = SdNet::new(bench_net_config(spec), &mut ChaCha8Rng::seed_from_u64(0));
    // The paper trains with hundreds of points per domain; keep the same
    // per-domain point counts across rows so memory scales with domains.
    let (qd, qc) = (64, 64);
    let mut sampler = BatchSampler::new(1, qd, qc, 0);

    let mut rows = Vec::new();
    let mut last = None;
    for &domains in &domain_counts {
        let idx: Vec<usize> = (0..domains).collect();
        let batch = sampler.make_batch(&ds, &idx);
        let r = measure_step_memory(&net, &batch);
        rows.push(vec![
            domains.to_string(),
            format!("{:.3} MB", r.bytes_no_pde as f64 / 1e6),
            format!("{:.3} MB", r.bytes_with_pde as f64 / 1e6),
            format!("{:.1}x", r.blowup()),
        ]);
        last = Some(r);
    }
    print_table(
        "Table 3: memory per training step",
        &["# domains", "no PDE loss", "with PDE loss", "blowup"],
        &rows,
    );

    // Before/after table for the allocation-lean hot path: the legacy
    // engine (fresh unpooled graph per pass, chained adjoint adds, unfused
    // VJPs — what `main` ran) vs the lean engine with checkpointed
    // segments on a warm persistent graph (steps 2+ of a training run).
    set_checkpointed_segments(true);
    let mut lean_rows = Vec::new();
    let mut gate_metrics = Vec::new();
    for &domains in &domain_counts {
        let idx: Vec<usize> = (0..domains).collect();
        let batch = sampler.make_batch(&ds, &idx);
        let (legacy_peak, legacy_allocs) = legacy_step(&net, &batch);
        // Warm the pool with one step, then measure steady state.
        let _ = local_gradients(&net, &batch, 1.0);
        let (_, _, warm) = local_gradients(&net, &batch, 1.0);
        let reduction = 1.0 - warm.peak_bytes as f64 / legacy_peak as f64;
        let alloc_ratio = legacy_allocs as f64 / warm.heap_allocs.max(1) as f64;
        lean_rows.push(vec![
            domains.to_string(),
            format!("{:.3} MB", legacy_peak as f64 / 1e6),
            format!("{:.3} MB", warm.peak_bytes as f64 / 1e6),
            format!("{:.0}%", reduction * 100.0),
            legacy_allocs.to_string(),
            warm.heap_allocs.to_string(),
            if warm.heap_allocs == 0 {
                "inf".to_string()
            } else {
                format!("{alloc_ratio:.0}x")
            },
        ]);
        if domains == max_domains {
            gate_metrics.push((
                "table3.warm_peak_bytes".to_string(),
                Metric {
                    value: warm.peak_bytes as f64,
                    tol: 0.15,
                    higher_better: false,
                },
            ));
            gate_metrics.push((
                "table3.warm_heap_allocs".to_string(),
                // Steady state is exactly zero; any alloc is a regression,
                // and the relative-change math needs a nonzero-safe tol.
                Metric {
                    value: warm.heap_allocs as f64,
                    tol: 0.15,
                    higher_better: false,
                },
            ));
            gate_metrics.push((
                "table3.peak_reduction_vs_legacy".to_string(),
                Metric {
                    value: reduction,
                    tol: 0.15,
                    higher_better: true,
                },
            ));
        }
    }
    set_checkpointed_segments(false);
    print_table(
        "Allocation-lean hot path: before (legacy engine) vs after (warm lean step)",
        &[
            "# domains",
            "peak before",
            "peak after",
            "reduction",
            "allocs before",
            "allocs after",
            "ratio",
        ],
        &lean_rows,
    );
    emit_metrics(&gate_metrics);

    if let Some(r) = last {
        // Memory grows linearly in the domain count (verified by the
        // table); extrapolate to the paper's 16 GB V100.
        let bytes_per_domain = r.bytes_with_pde as f64 / r.domains as f64;
        let v100 = 16.0 * 1e9;
        println!(
            "\nextrapolation: with the PDE loss, a 16 GB device fits ~{} domains of\n\
             this configuration before OOM (paper observed OOM at 640 domains with\n\
             its larger 32x32-resolution network).",
            (v100 / bytes_per_domain) as usize
        );
        println!(
            "shape check vs paper: PDE loss inflates memory ~{:.0}x (paper: ~10x at 5\n\
             domains, 5.5x at 320); growth in domains is linear in both.",
            r.blowup()
        );
    }
    finish_trace(trace);
}
