//! **Table 3**: autograd-graph memory during a training step, with and
//! without the PDE loss, as the number of domains (boundary conditions per
//! batch) grows.
//!
//! The paper measures 0.05 GB → 0.503 GB at 5 domains and OOM at 640
//! domains on a 16 GB V100 once the PDE loss is enabled. Here the arena
//! graph meters its bytes exactly, so the same blowup is reported
//! per-domain-count, together with the extrapolated domain count that
//! would exhaust a 16 GB device.
//!
//! ```text
//! cargo run -p mf-bench --release --bin repro_table3 [--full]
//! ```

use mf_bench::*;
use mf_data::{BatchSampler, Dataset};
use mf_nn::SdNet;
use mf_train::measure_step_memory;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let spec = bench_spec();
    let domain_counts: Vec<usize> = if full_scale() {
        vec![1, 2, 5, 10, 20, 40, 80]
    } else {
        vec![1, 2, 5, 10, 20]
    };
    let max_domains = *domain_counts.last().unwrap();

    println!("Table 3 reproduction: autograd memory vs batch domain count");
    println!("(paper: 5 domains = 0.05 GB / 0.503 GB; 640 domains OOM on 16 GB V100)");

    let ds = Dataset::generate(spec, max_domains, 0);
    let net = SdNet::new(bench_net_config(spec), &mut ChaCha8Rng::seed_from_u64(0));
    // The paper trains with hundreds of points per domain; keep the same
    // per-domain point counts across rows so memory scales with domains.
    let (qd, qc) = (64, 64);
    let mut sampler = BatchSampler::new(1, qd, qc, 0);

    let mut rows = Vec::new();
    let mut last = None;
    for &domains in &domain_counts {
        let idx: Vec<usize> = (0..domains).collect();
        let batch = sampler.make_batch(&ds, &idx);
        let r = measure_step_memory(&net, &batch);
        rows.push(vec![
            domains.to_string(),
            format!("{:.3} MB", r.bytes_no_pde as f64 / 1e6),
            format!("{:.3} MB", r.bytes_with_pde as f64 / 1e6),
            format!("{:.1}x", r.blowup()),
        ]);
        last = Some(r);
    }
    print_table(
        "Table 3: memory per training step",
        &["# domains", "no PDE loss", "with PDE loss", "blowup"],
        &rows,
    );

    if let Some(r) = last {
        // Memory grows linearly in the domain count (verified by the
        // table); extrapolate to the paper's 16 GB V100.
        let bytes_per_domain = r.bytes_with_pde as f64 / r.domains as f64;
        let v100 = 16.0 * 1e9;
        println!(
            "\nextrapolation: with the PDE loss, a 16 GB device fits ~{} domains of\n\
             this configuration before OOM (paper observed OOM at 640 domains with\n\
             its larger 32x32-resolution network).",
            (v100 / bytes_per_domain) as usize
        );
        println!(
            "shape check vs paper: PDE loss inflates memory ~{:.0}x (paper: ~10x at 5\n\
             domains, 5.5x at 320); growth in domains is linear in both.",
            r.blowup()
        );
    }
}
