//! **Figure 9a + Table 4**: strong scaling of the distributed MFP on a
//! fixed global domain.
//!
//! The paper solves a 32×32 spatial domain (2048×2048, 4096 atomic
//! subdomains) to MAE ≤ 0.05 on 1..32 A30 GPUs: total time drops ~10×
//! while the communication fraction grows; iterations rise mildly from
//! 3200 to 3500 (Table 4). Here the same algorithm runs on simulated
//! ranks; per-rank compute seconds are measured (each rank's own busy
//! time) and communication is modeled from the real message/byte counters
//! with the A30-like alpha-beta model, plus the mpi4py-like model the
//! paper actually measured.
//!
//! ```text
//! cargo run -p mf-bench --release --bin repro_fig9a [--full]
//! ```

use mf_bench::*;
use mf_dist::PerfModel;
use mf_mfp::{run_distributed, DistMfpConfig, DomainSpec, MaeTarget, OracleSolver};

fn main() {
    let trace = init_telemetry();
    let spec = bench_spec();
    let (sx, sy) = if full_scale() { (16, 16) } else { (8, 8) };
    let ranks: Vec<usize> = if full_scale() {
        vec![1, 2, 4, 8, 16, 32]
    } else {
        vec![1, 2, 4, 8, 16]
    };
    let domain = DomainSpec::new(spec, sx, sy);
    println!(
        "Figure 9a / Table 4 reproduction: strong scaling on a {}x{} spatial domain",
        sx as f64 * spec.spatial,
        sy as f64 * spec.spatial,
    );
    println!(
        "({}x{} grid, {} atomic / {} overlapping subdomains; paper: 2048x2048, 4096 atomic)\n",
        domain.nx(),
        domain.ny(),
        domain.atomic_subdomains().len(),
        domain.subdomains().len()
    );

    let bc = gp_boundary(&domain, 9);
    let reference = reference_solution(&domain, &bc);
    let oracle = OracleSolver::new(spec, 1e-9);
    let model = PerfModel::a30_cluster();
    let mpi4py = PerfModel::mpi4py_serialized();

    let mut rows = Vec::new();
    let mut iter_row = vec!["Iterations".to_string()];
    let mut base_total = f64::NAN;
    for &p in &ranks {
        let res = run_distributed(
            &oracle,
            &domain,
            &bc,
            p,
            &DistMfpConfig {
                max_iters: 5000,
                tol: 0.0,
                target: Some(MaeTarget {
                    reference: reference.clone(),
                    mae: 0.05,
                    every: 1,
                }),
                ..Default::default()
            },
        );
        assert!(res.converged, "P={p} did not reach MAE 0.05");
        // The slowest rank sets the pace; a rank's busy time is its own
        // work even when all ranks timeshare one core.
        let compute = res
            .reports
            .iter()
            .map(|r| r.compute_seconds)
            .fold(0.0, f64::max);
        let io = res
            .reports
            .iter()
            .map(|r| r.pack_seconds)
            .fold(0.0, f64::max);
        let comm = res
            .reports
            .iter()
            .map(|r| model.time_for(&r.halo))
            .fold(0.0, f64::max);
        let comm_mpi4py = res
            .reports
            .iter()
            .map(|r| mpi4py.time_for(&r.halo))
            .fold(0.0, f64::max);
        let total = compute + io + comm;
        if p == 1 {
            base_total = total;
        }
        rows.push(vec![
            p.to_string(),
            res.iterations.to_string(),
            fmt_secs(compute),
            fmt_secs(io),
            fmt_secs(comm),
            fmt_secs(comm_mpi4py),
            fmt_secs(total),
            format!("{:.2}x", base_total / total),
            format!("{:.0}%", 100.0 * comm / total),
        ]);
        iter_row.push(res.iterations.to_string());
    }
    print_table(
        "Fig 9a: strong scaling (compute measured, comm modeled)",
        &[
            "ranks",
            "iters",
            "compute",
            "bound. IO",
            "comm (IB)",
            "comm (mpi4py)",
            "total",
            "speedup",
            "comm %",
        ],
        &rows,
    );

    let mut header = vec!["GPU count".to_string()];
    header.extend(ranks.iter().map(|p| p.to_string()));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    print_table(
        "Table 4: iterations to reach MAE 0.05",
        &header_refs,
        &[iter_row],
    );
    println!(
        "\npaper Table 4:  1->3200, 2->3250, 4->3250, 8->3300, 16->3400, 32->3500\n\
         (mild growth from relaxed synchronization; same trend expected above)\n\
         paper Fig 9a: total 880s -> 90s over 1..32 GPUs with the communication\n\
         share growing — the compute column above falls ~1/P while modeled comm\n\
         shrinks only ~1/sqrt(P), reproducing the shape."
    );
    finish_trace(trace);
}
