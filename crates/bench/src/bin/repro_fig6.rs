//! **Figure 6**: multi-device SDNet training — convergence vs epochs, and
//! time-to-target-MSE as the device count grows.
//!
//! The paper trains with 1..32 A30 GPUs: all device counts reach final
//! MSEs within 1.5e-6 of the single-GPU model (Fig 6a), and 32 GPUs reach
//! the target MSE ~12× faster (Fig 6c). This host has one core, so
//! per-device *work* is measured directly (it shrinks 1/P with sharded
//! data) and the data-parallel step time is modeled as
//! `measured-compute/P + ring-allreduce(model size)` with the A30-like
//! alpha-beta model — the same substitution DESIGN.md documents.
//!
//! ```text
//! cargo run -p mf-bench --release --bin repro_fig6 [--full] [--trace out.json]
//! ```

use mf_bench::*;
use mf_data::Dataset;
use mf_dist::PerfModel;
use mf_nn::SdNet;
use mf_opt::LrSchedule;
use mf_train::trainer::{train_ddp, OptKind, TrainConfig};
use mf_train::GradSync;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let trace = init_telemetry();
    let spec = bench_spec();
    let (samples, epochs) = if full_scale() { (480, 60) } else { (160, 24) };
    let devices: Vec<usize> = if full_scale() {
        vec![1, 2, 4, 8, 16]
    } else {
        vec![1, 2, 4, 8]
    };

    println!("Figure 6 reproduction: data-parallel SDNet training");
    println!("dataset: {samples} samples, {epochs} epochs, LAMB, sqrt-scaled LR\n");

    let dataset = Dataset::generate(spec, samples, 0);
    let (train, val) = dataset.split(0.9);
    let template = SdNet::new(bench_net_config(spec), &mut ChaCha8Rng::seed_from_u64(0));
    let model_bytes = template.count_params() * 8;

    let base = TrainConfig {
        epochs,
        batch_size: 8,
        qd: 48,
        qc: 16,
        pde_weight: 0.02,
        schedule: LrSchedule {
            max_lr: 6e-3,
            ..LrSchedule::paper_default(epochs * (train.len() / 8))
        },
        opt: OptKind::Lamb(0.0),
        seed: 0,
        clip_norm: None,
    };

    let model = PerfModel::a30_cluster();
    let mut rows = Vec::new();
    let mut curves: Vec<(usize, Vec<f64>)> = Vec::new();
    let mut single_final = f64::NAN;
    let mut single_modeled_time = f64::NAN;

    for &p in &devices {
        let (res, wall) = mf_telemetry::timed("fig6.train_ddp", || {
            train_ddp(p, &template, &train, &val, &base, GradSync::Fused)
        });
        let final_mse = res.logs.last().unwrap().val_mse;
        // Modeled data-parallel epoch time: the measured serialized wall
        // clock divided over P devices (per-rank work is 1/P of the
        // total) plus one ring allreduce of the model per step.
        let steps = epochs * (train.len() / p / base.batch_size).max(1);
        let allreduce_bytes_per_step = 2 * model_bytes; // reduce-scatter + allgather volume
        let comm_time = steps as f64 * model.time(2 * (p - 1), allreduce_bytes_per_step);
        let modeled = wall / p as f64 + comm_time;
        if p == 1 {
            single_final = final_mse;
            single_modeled_time = modeled;
        }
        rows.push(vec![
            p.to_string(),
            format!("{final_mse:.5}"),
            format!("{:+.5}", final_mse - single_final),
            fmt_secs(modeled),
            format!("{:.2}x", single_modeled_time / modeled),
            format!("{:.1} MB", res.comm_stats[0].bytes_sent as f64 / 1e6),
        ]);
        curves.push((p, res.logs.iter().map(|l| l.val_mse).collect()));
    }

    print_table(
        "Fig 6: DDP training across device counts",
        &[
            "devices",
            "final val MSE",
            "delta vs 1 dev",
            "modeled time",
            "speedup",
            "allreduce/rank",
        ],
        &rows,
    );

    println!("\nFig 6a: validation MSE vs epoch (every 4th epoch)");
    print!("{:>8}", "epoch");
    for (p, _) in &curves {
        print!("{:>12}", format!("P={p}"));
    }
    println!();
    let n_epochs = curves[0].1.len();
    for e in (0..n_epochs)
        .step_by(4)
        .chain(std::iter::once(n_epochs - 1))
    {
        print!("{e:>8}");
        for (_, c) in &curves {
            print!("{:>12.5}", c[e]);
        }
        println!();
    }

    println!(
        "\nshape check vs paper: every device count converges to a final MSE close\n\
         to the single-device model (paper: within 1.5e-6 at its scale), while the\n\
         modeled time-to-train shrinks with P until the allreduce floor (paper:\n\
         30 min -> 2 min, ~12x on 32 GPUs)."
    );
    finish_trace(trace);
}
