//! **Figure 1**: distributed Mosaic Flow vs a direct numerical solve on a
//! 2×2 spatial domain with a Gaussian-process boundary condition.
//!
//! The paper shows the pyAMG solution, the distributed-MFP solution and
//! their absolute difference on a 128×128 grid. This binary solves the
//! same 2×2 spatial domain (65×65 grid by default, 129×129 with
//! `--full`), prints the error statistics and renders a coarse ASCII map
//! of the absolute difference.
//!
//! ```text
//! cargo run -p mf-bench --release --bin repro_fig1 [--full]
//! ```

use mf_bench::*;
use mf_mfp::{run_distributed, DistMfpConfig, DomainSpec, NeuralSolver, OracleSolver};
use mf_tensor::Tensor;

fn ascii_map(diff: &Tensor, levels: &str) {
    let (ny, nx) = diff.shape();
    let max = diff.norm_linf().max(1e-300);
    let chars: Vec<char> = levels.chars().collect();
    let step_j = (ny / 24).max(1);
    let step_i = (nx / 48).max(1);
    for j in (0..ny).step_by(step_j).rev() {
        let mut line = String::new();
        for i in (0..nx).step_by(step_i) {
            let v = diff.get(j, i) / max;
            let idx = ((v * (chars.len() - 1) as f64).round() as usize).min(chars.len() - 1);
            line.push(chars[idx]);
        }
        println!("  {line}");
    }
}

fn main() {
    let trace = init_telemetry();
    let spec = bench_spec();
    // 2x2 spatial units = 4x4 atomic subdomains of 0.5 each.
    let domain = DomainSpec::new(spec, 4, 4);
    println!(
        "Figure 1 reproduction: 2x2 spatial domain, {}x{} grid (paper: 128x128)",
        domain.nx(),
        domain.ny()
    );
    let bc = gp_boundary(&domain, 1);

    println!("\n[1/3] reference: global multigrid solve (the paper's pyAMG role)");
    let reference = reference_solution(&domain, &bc);

    println!("[2/3] distributed MFP on 4 ranks with the numerical oracle solver");
    let oracle = OracleSolver::new(spec, 1e-9);
    let res_oracle = run_distributed(
        &oracle,
        &domain,
        &bc,
        4,
        &DistMfpConfig {
            max_iters: 2000,
            tol: 1e-8,
            ..Default::default()
        },
    );
    let diff_oracle = res_oracle.grid.zip_map(&reference, |a, b| (a - b).abs());

    println!("[3/3] distributed MFP on 4 ranks with a freshly trained SDNet");
    let (samples, epochs) = if full_scale() { (600, 150) } else { (200, 60) };
    let (net, val_mse) = train_sdnet(spec, samples, epochs, 0);
    println!("      trained SDNet validation MSE: {val_mse:.5}");
    let neural = NeuralSolver::new(net, spec);
    let res_net = run_distributed(
        &neural,
        &domain,
        &bc,
        4,
        &DistMfpConfig {
            max_iters: 400,
            tol: 1e-5,
            ..Default::default()
        },
    );
    let diff_net = res_net.grid.zip_map(&reference, |a, b| (a - b).abs());

    print_table(
        "Fig 1: distributed MFP vs direct numerical solve",
        &["solver", "iterations", "MAE", "max |diff|"],
        &[
            vec![
                "oracle".into(),
                res_oracle.iterations.to_string(),
                format!("{:.6}", res_oracle.grid.mean_abs_diff(&reference)),
                format!("{:.6}", diff_oracle.norm_linf()),
            ],
            vec![
                "SDNet".into(),
                res_net.iterations.to_string(),
                format!("{:.6}", res_net.grid.mean_abs_diff(&reference)),
                format!("{:.6}", diff_net.norm_linf()),
            ],
        ],
    );
    println!(
        "\npaper: the MFP prediction is visually indistinguishable from pyAMG;\n\
         absolute difference concentrated near subdomain interfaces.\n"
    );
    println!("|MFP(SDNet) - reference| (dark = 0, bright = max):");
    ascii_map(&diff_net, " .:-=+*#%@");
    finish_trace(trace);
}
