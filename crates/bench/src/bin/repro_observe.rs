//! **Observability overhead**: the flight recorder's cost on the warm
//! training step, for the CI bench gate.
//!
//! The recorder is on by default, so its overhead budget is part of the
//! repo's performance contract: the `observe.overhead` metric is the
//! ratio of warm `mf-train` step time with the recorder enabled to the
//! time with it disabled, gated at ≤ 3% in `BENCH_baseline.json`.
//!
//! Methodology: prime the step-graph buffer pool, then interleave
//! recorder-on and recorder-off rounds (A/B/A/B…) and compare the
//! *medians* of per-round mean step times. Interleaving cancels slow
//! drift (thermal, scheduler); medians shrug off one-off outliers. A
//! run-to-run noisy ratio is expected — the baseline keeps `value: 1.0`
//! so the gate bounds the overhead itself, not its noise.
//!
//! ```text
//! cargo run -p mf-bench --release --bin repro_observe [--json PATH]
//! ```

use mf_bench::*;
use mf_data::{BatchSampler, Dataset};
use mf_nn::SdNet;
use mf_opt::Sgd;
use mf_train::step::train_step_single;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::time::Instant;

const ROUNDS: usize = 9;
const STEPS_PER_ROUND: usize = 8;

fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    v[v.len() / 2]
}

/// Mean seconds per warm step over one round.
fn round(net: &mut SdNet, batch: &mf_data::Batch, opt: &mut Sgd) -> f64 {
    let t0 = Instant::now();
    for _ in 0..STEPS_PER_ROUND {
        train_step_single(net, batch, opt, 1e-4, 0.05);
    }
    t0.elapsed().as_secs_f64() / STEPS_PER_ROUND as f64
}

fn main() {
    let trace = init_telemetry();
    let spec = bench_spec();
    let ds = Dataset::generate(spec, 4, 0);
    let mut sampler = BatchSampler::new(2, 16, 16, 0);
    let batch = sampler.make_batch(&ds, &[0, 1]);
    let mut net = SdNet::new(bench_net_config(spec), &mut ChaCha8Rng::seed_from_u64(0));
    let mut opt = Sgd::new(0.0);

    // Prime the pool: the first steps allocate, later ones must not.
    for _ in 0..4 {
        train_step_single(&mut net, &batch, &mut opt, 1e-4, 0.05);
    }

    let mut on = Vec::with_capacity(ROUNDS);
    let mut off = Vec::with_capacity(ROUNDS);
    for _ in 0..ROUNDS {
        mf_observe::set_recording(true);
        on.push(round(&mut net, &batch, &mut opt));
        mf_observe::set_recording(false);
        off.push(round(&mut net, &batch, &mut opt));
    }
    mf_observe::set_recording(true);

    let (t_on, t_off) = (median(on), median(off));
    let overhead = t_on / t_off;
    print_table(
        "Observability: flight-recorder overhead on the warm training step",
        &["recorder", "median step", "ratio"],
        &[
            vec!["off".into(), fmt_secs(t_off), "1.000".into()],
            vec!["on".into(), fmt_secs(t_on), format!("{overhead:.3}")],
        ],
    );
    println!(
        "\ncontract: the always-on recorder must cost <= 3% of a warm step\n\
         (ring writes are one index bump + one slot store; no heap traffic)."
    );

    emit_metrics(&[(
        "observe.overhead".to_string(),
        gate::Metric {
            value: overhead,
            tol: 0.03,
            higher_better: false,
        },
    )]);
    finish_trace(trace);
}
