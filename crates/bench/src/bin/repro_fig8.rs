//! **Figure 8**: batched vs unbatched atomic-subdomain inference, single
//! device, increasing domain size.
//!
//! The paper sweeps domains from 1×2 to 16×16 spatial units: the unbatched
//! baseline's time per iteration grows linearly with subdomain count while
//! batching keeps the device busy (up to ~100× faster per iteration, no
//! accuracy change). Here the subdomain solver is the trained-architecture
//! SDNet (batching = one big GEMM vs many small ones).
//!
//! ```text
//! cargo run -p mf-bench --release --bin repro_fig8 [--full] [--trace out.json]
//! ```

use mf_bench::*;
use mf_dist::{GpuModel, PerfModel};
use mf_mfp::{DomainSpec, Mfp, MfpConfig, NeuralSolver, SubdomainSolver};
use mf_nn::SdNet;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let trace = init_telemetry();
    let spec = bench_spec();
    // Untrained weights are fine here: Fig 8 measures per-iteration
    // throughput, not accuracy (the batched/unbatched results are
    // identical either way — asserted below).
    let net = SdNet::new(bench_net_config(spec), &mut ChaCha8Rng::seed_from_u64(0));
    let solver = NeuralSolver::new(net, spec);

    let domains: Vec<(usize, usize)> = if full_scale() {
        vec![
            (1, 2),
            (2, 2),
            (4, 2),
            (4, 4),
            (8, 4),
            (8, 8),
            (16, 8),
            (16, 16),
        ]
    } else {
        vec![(1, 2), (2, 2), (4, 2), (4, 4), (8, 4), (8, 8)]
    };

    println!("Figure 8 reproduction: batched vs unbatched MFP iteration time");
    println!("(CPU columns measured here; GPU columns from an A30-like occupancy model");
    println!(" fed by the real launch/point counts of each run)");
    let gpu = GpuModel::a30_like();
    // Comm/compute overlap headroom (§4.3): the alpha-beta model's halo
    // cost per iteration at P=4, against the batched compute time — the
    // fraction of modeled communication hideable behind compute.
    let net_model = PerfModel::a30_cluster();
    const OVERLAP_P: usize = 4;
    let mut rows = Vec::new();
    for &(sx, sy) in &domains {
        let domain = DomainSpec::new(spec, sx, sy);
        let bc = gp_boundary(&domain, 3);
        let mfp = Mfp::new(&solver, domain);
        let iters = if domain.subdomains().len() > 200 {
            3
        } else {
            8
        };

        let run = |batched: bool| {
            let cfg = MfpConfig {
                max_iters: iters,
                tol: 0.0,
                batched,
                target: None,
                coarse_init: false,
            };
            let (l0, p0) = (solver.launch_count(), solver.inference_count());
            let name = if batched {
                "fig8.run_batched"
            } else {
                "fig8.run_unbatched"
            };
            let (r, secs) = mf_telemetry::timed(name, || mfp.run(&bc, &cfg));
            let cpu = secs / iters as f64;
            let launches = solver.launch_count() - l0;
            let points = solver.inference_count() - p0;
            let gpu_time = gpu.time(launches, points) / iters as f64;
            (r, cpu, gpu_time)
        };

        let (ru, cpu_u, gpu_u) = run(false);
        let (rb, cpu_b, gpu_b) = run(true);
        assert!(
            rb.grid.max_abs_diff(&ru.grid) < 1e-10,
            "batching changed the result"
        );

        let comm_per_iter = net_model.mfp_comm_cost(1, domain.nx(), spec.m, OVERLAP_P);
        let overlap = if comm_per_iter > 0.0 {
            (gpu_b.min(comm_per_iter) / comm_per_iter).min(1.0)
        } else {
            1.0
        };
        rows.push(vec![
            format!("{}x{}", sx as f64 * spec.spatial, sy as f64 * spec.spatial),
            domain.subdomains().len().to_string(),
            fmt_secs(cpu_u),
            fmt_secs(cpu_b),
            fmt_secs(gpu_u),
            fmt_secs(gpu_b),
            format!("{:.0}x", gpu_u / gpu_b),
            format!("{overlap:.2}"),
        ]);
    }
    print_table(
        &format!("Fig 8: time per MFP iteration (overlap modeled at P={OVERLAP_P})"),
        &[
            "domain",
            "subdomains",
            "CPU unbat.",
            "CPU batch",
            "GPU unbat.",
            "GPU batch",
            "GPU speedup",
            "overlap",
        ],
        &rows,
    );
    println!(
        "\nshape check vs paper: on a device with launch overhead and an occupancy\n\
         ramp, unbatched time grows linearly with the subdomain count while the\n\
         batched time stays near-flat, so the speedup widens with domain size\n\
         (the paper measures up to ~100x at 16x16). On this 1-core host the\n\
         measured CPU columns show only the graph-building overhead saved by\n\
         batching; results are identical either way (asserted)."
    );
    finish_trace(trace);
}
