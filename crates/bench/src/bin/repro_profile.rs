//! **Profiler overhead**: the continuous profiler's cost on the warm
//! inference hot path, plus the exposition server's scrape latency, for
//! the CI bench gate.
//!
//! The zone timers (`mf_profile::zone!`) are on by default inside the
//! per-kernel hot loops (`gemm`, `unfold`, `activation`, VJP passes,
//! halo exchange), so their overhead budget is part of the repo's
//! performance contract:
//!
//! * `profile.overhead` — ratio of warm `InferencePlan::execute_into`
//!   time with zones enabled to the time with them disabled, gated at
//!   ≤ 3% (`tol: 0.03`, baseline `value: 1.0`).
//! * `profile.warm_allocs` — workspace allocations during the profiled
//!   warm loop; must be exactly 0 (recording into the histogram and the
//!   time-series ring reuses per-thread storage after the first touch).
//! * `profile.scrape_us` — median `GET /metrics` round-trip against the
//!   in-process exposition server, loosely gated (wall clock on shared
//!   CI is noisy).
//!
//! Methodology mirrors `repro_observe`: prime the workspace pool, then
//! interleave zones-on and zones-off rounds (A/B/A/B…) and compare the
//! *medians* of per-round mean execute times. Interleaving cancels slow
//! drift; medians shrug off outliers.
//!
//! ```text
//! cargo run -p mf-bench --release --bin repro_profile [--json PATH]
//! ```

use mf_bench::*;
use mf_infer::{InferencePlan, Workspace};
use mf_nn::SdNet;
use mf_profile::MetricsServer;
use mf_tensor::Tensor;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::time::Instant;

const ROUNDS: usize = 9;
const EXECS_PER_ROUND: usize = 32;
const SCRAPES: usize = 15;

fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    v[v.len() / 2]
}

/// Mean seconds per warm plan execution over one round.
fn round(plan: &InferencePlan, ws: &mut Workspace, bounds: &Tensor, out: &mut Tensor) -> f64 {
    let t0 = Instant::now();
    for _ in 0..EXECS_PER_ROUND {
        plan.execute_into(ws, bounds, out);
    }
    t0.elapsed().as_secs_f64() / EXECS_PER_ROUND as f64
}

fn main() {
    let trace = init_telemetry();
    let spec = bench_spec();
    let net = SdNet::new(bench_net_config(spec), &mut ChaCha8Rng::seed_from_u64(0));

    // A batched-MFP-shaped workload: B subdomain boundary walks through
    // one compiled plan over the interior query points.
    let b = 16;
    let q = (spec.m - 2) * (spec.m - 2);
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let l = net.config().boundary_len;
    let bounds = Tensor::from_fn(b, l, |_, _| rng.gen_range(-1.0..1.0));
    let extent = net.config().coord_extent;
    let pts = Tensor::from_fn(q, 2, |_, _| rng.gen_range(0.0..extent));
    let plan = InferencePlan::compile(&net, &pts);
    let mut ws = Workspace::new();
    let mut out = Tensor::zeros(b * q, 1);

    // Prime the pool (and the per-thread zone storage): the first
    // executions allocate, later ones must not.
    mf_profile::set_enabled(true);
    for _ in 0..4 {
        plan.execute_into(&mut ws, &bounds, &mut out);
    }
    let warm_allocs_before = ws.warm_allocs();

    let mut on = Vec::with_capacity(ROUNDS);
    let mut off = Vec::with_capacity(ROUNDS);
    for _ in 0..ROUNDS {
        mf_profile::set_enabled(true);
        on.push(round(&plan, &mut ws, &bounds, &mut out));
        mf_profile::set_enabled(false);
        off.push(round(&plan, &mut ws, &bounds, &mut out));
    }
    mf_profile::set_enabled(true);
    let warm_allocs = ws.warm_allocs() - warm_allocs_before;

    let (t_on, t_off) = (median(on), median(off));
    let overhead = t_on / t_off;
    print_table(
        "Profiler: zone-timer overhead on the warm inference plan",
        &["zones", "median execute", "ratio"],
        &[
            vec!["off".into(), fmt_secs(t_off), "1.000".into()],
            vec!["on".into(), fmt_secs(t_on), format!("{overhead:.3}")],
        ],
    );
    println!("warm-loop workspace allocations with zones on: {warm_allocs}");

    // Scrape latency: publish this thread's metrics, then time full
    // GET /metrics round-trips against a loopback server.
    mf_telemetry::publish_thread();
    let scrape_us = match MetricsServer::start("127.0.0.1:0") {
        Ok(server) => {
            let addr = server.addr();
            let mut times = Vec::with_capacity(SCRAPES);
            for _ in 0..SCRAPES {
                let t0 = Instant::now();
                let (status, body) = mf_profile::http_get(addr, "/metrics").expect("scrape failed");
                times.push(t0.elapsed().as_secs_f64() * 1e6);
                assert!(status.contains("200"), "bad scrape status: {status}");
                assert!(body.ends_with("# EOF\n"), "truncated exposition");
            }
            median(times)
        }
        Err(e) => {
            eprintln!("skipping scrape benchmark (bind failed: {e})");
            f64::NAN
        }
    };
    println!("median GET /metrics round-trip: {scrape_us:.0}us");
    println!(
        "\ncontract: always-on zone timers must cost <= 3% of a warm plan\n\
         execution (one atomic load when disabled; one clock pair, one\n\
         histogram bump and one ring-slot update when enabled — no heap\n\
         traffic after the first record)."
    );

    let mut metrics = vec![
        (
            "profile.overhead".to_string(),
            gate::Metric {
                value: overhead,
                tol: 0.03,
                higher_better: false,
            },
        ),
        (
            "profile.warm_allocs".to_string(),
            gate::Metric {
                value: warm_allocs as f64,
                tol: 0.0,
                higher_better: false,
            },
        ),
    ];
    if scrape_us.is_finite() {
        metrics.push((
            "profile.scrape_us".to_string(),
            gate::Metric {
                value: scrape_us,
                tol: 3.0,
                higher_better: false,
            },
        ));
    }
    emit_metrics(&metrics);
    finish_trace(trace);
}
