//! CI benchmark gate: compare a PR's bench metrics against the checked-in
//! baseline and fail on regressions beyond each metric's budget.
//!
//! ```text
//! cargo run -p mf-bench --release --bin bench_gate -- BENCH_baseline.json BENCH_pr.json
//! ```
//!
//! Prints a markdown comparison table (also appended to
//! `$GITHUB_STEP_SUMMARY` when set, so it shows up on the workflow run
//! page) and exits nonzero when any baseline metric regressed by more
//! than its `tol`. Metrics present on only one side are listed but never
//! fail the gate. To re-baseline after an intentional change, regenerate
//! the baseline on main (see DESIGN.md, "Memory model") and commit it.

use mf_bench::gate::{baseline_provenance, compare, parse_metrics, render_markdown};
use std::io::Write;

fn load(path: &str) -> Vec<(String, mf_bench::gate::Metric)> {
    let body = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("bench_gate: cannot read {path}: {e}"));
    parse_metrics(&body).unwrap_or_else(|e| panic!("bench_gate: cannot parse {path}: {e}"))
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let [_, baseline_path, current_path] = &args[..] else {
        eprintln!("usage: bench_gate <baseline.json> <current.json>");
        std::process::exit(2);
    };
    let baseline = load(baseline_path);
    let current = load(current_path);
    let (rows, unmatched) = compare(&baseline, &current);
    let md = render_markdown(&rows, &unmatched, &baseline_provenance(baseline_path));
    println!("{md}");

    if let Ok(summary) = std::env::var("GITHUB_STEP_SUMMARY") {
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .append(true)
            .create(true)
            .open(&summary)
        {
            let _ = writeln!(f, "{md}");
        }
    }

    let failures: Vec<&str> = rows
        .iter()
        .filter(|r| r.failed)
        .map(|r| r.name.as_str())
        .collect();
    if !failures.is_empty() {
        eprintln!(
            "bench gate FAILED: {} metric(s) regressed beyond budget: {}",
            failures.len(),
            failures.join(", ")
        );
        std::process::exit(1);
    }
    eprintln!("bench gate passed: {} metric(s) within budget", rows.len());
}
