//! **Figure 5**: SDNet inference and training throughput vs batch size,
//! optimized (input-split) model vs baseline (input-concat) model.
//!
//! The paper shows the split-layer model sustaining much higher
//! points/second and scaling to 5× larger batches before memory limits
//! (concat OOMs at 10k points, split reaches 50k). This binary sweeps the
//! batch size, measures points/s for inference and for a full
//! physics-informed training step, and reports the autograd bytes that
//! determine the memory ceiling.
//!
//! ```text
//! cargo run -p mf-bench --release --bin repro_fig5 [--full] [--trace out.json]
//! ```

use mf_autodiff::Graph;
use mf_bench::*;
use mf_data::{Batch, BatchSampler, Dataset};
use mf_nn::{EmbeddingKind, SdNet};
use mf_tensor::Tensor;
use mf_train::local_gradients;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Points per boundary for a target total batch of points.
const BOUNDARIES: usize = 8;

fn nets(spec: mf_data::SubdomainSpec) -> (SdNet, SdNet) {
    let cfg = bench_net_config(spec);
    let split = SdNet::new(cfg, &mut ChaCha8Rng::seed_from_u64(0));
    let mut concat = split.clone();
    concat.config_mut().embedding = EmbeddingKind::Concat;
    (split, concat)
}

fn time_inference(net: &SdNet, boundaries: &Tensor, q: usize, reps: usize) -> (f64, usize) {
    let pts = Tensor::from_fn(BOUNDARIES * q, 2, |r, c| {
        0.03 * ((r * 2 + c) as f64).sin().abs() + 0.1
    });
    // Measure graph bytes once.
    let bytes = {
        let mut g = Graph::new();
        let bound = net.params.bind(&mut g);
        let gb = g.constant(boundaries.clone());
        let x = g.constant(pts.clone());
        let _ = net.forward(&mut g, &bound, gb, x, q);
        g.bytes_allocated()
    };
    let (_, secs) = mf_telemetry::timed("fig5.inference", || {
        for _ in 0..reps {
            let _ = net.predict(boundaries, &pts, q);
        }
    });
    (secs / reps as f64, bytes)
}

fn time_train_step(net: &SdNet, batch: &Batch, reps: usize) -> (f64, usize) {
    // Bytes of both passes (the paper's memory axis).
    let (_, _, stats) = local_gradients(net, batch, 1.0);
    let (_, secs) = mf_telemetry::timed("fig5.train_step", || {
        for _ in 0..reps {
            let _ = local_gradients(net, batch, 1.0);
        }
    });
    (secs / reps as f64, stats.graph_bytes)
}

fn main() {
    let trace = init_telemetry();
    let spec = bench_spec();
    let (split, concat) = nets(spec);
    let ds = Dataset::generate(spec, BOUNDARIES, 0);
    let batch_points: Vec<usize> = if full_scale() {
        vec![100, 500, 1_000, 5_000, 10_000, 20_000, 50_000]
    } else {
        vec![100, 500, 1_000, 5_000, 10_000]
    };

    println!("Figure 5 reproduction: split vs concat embedding throughput");
    println!(
        "({} boundary conditions per batch; inference = forward only,",
        BOUNDARIES
    );
    println!(" training = data pass + PDE double-backward pass)");

    let boundaries = Tensor::vstack(
        &ds.samples
            .iter()
            .take(BOUNDARIES)
            .map(|s| s.boundary.clone())
            .collect::<Vec<_>>(),
    );

    // Inference sweep.
    let mut rows = Vec::new();
    for &pts in &batch_points {
        let q = (pts / BOUNDARIES).max(1);
        let reps = (20_000 / pts).clamp(1, 50);
        let (ts, bs) = time_inference(&split, &boundaries, q, reps);
        let (tc, bcat) = time_inference(&concat, &boundaries, q, reps);
        rows.push(vec![
            (q * BOUNDARIES).to_string(),
            format!("{:.0}", q as f64 * BOUNDARIES as f64 / ts),
            format!("{:.0}", q as f64 * BOUNDARIES as f64 / tc),
            format!("{:.2}x", ts.recip() / tc.recip()),
            format!("{:.1} MB", bs as f64 / 1e6),
            format!("{:.1} MB", bcat as f64 / 1e6),
        ]);
    }
    print_table(
        "Fig 5a: inference",
        &[
            "points",
            "split pts/s",
            "concat pts/s",
            "speedup",
            "split mem",
            "concat mem",
        ],
        &rows,
    );

    // Training sweep (smaller sizes: the autograd graph is the limiter,
    // exactly the paper's point).
    let train_points: Vec<usize> = batch_points
        .iter()
        .map(|p| p / 5)
        .filter(|&p| p >= 160)
        .collect();
    let mut rows = Vec::new();
    let mut gate_metrics = Vec::new();
    for &pts in &train_points {
        let per_boundary = (pts / BOUNDARIES / 2).max(1);
        let mut s2 = BatchSampler::new(BOUNDARIES, per_boundary, per_boundary, 0);
        let idx: Vec<usize> = (0..BOUNDARIES).collect();
        let batch = s2.make_batch(&ds, &idx);
        let reps = (1200 / pts).clamp(3, 8);
        let total = BOUNDARIES * per_boundary * 2;
        let (ts, bs) = time_train_step(&split, &batch, reps);
        let concat_batch = batch.clone();
        let (tc, bcat) = time_train_step(&concat, &concat_batch, reps);
        if Some(&pts) == train_points.last() {
            use mf_bench::gate::Metric;
            // Throughput is wall-clock noise on shared CI runners; give it
            // a wide budget. Graph bytes are deterministic.
            gate_metrics.push((
                "fig5.split_train_pts_per_s".to_string(),
                Metric {
                    value: total as f64 / ts,
                    tol: 0.5,
                    higher_better: true,
                },
            ));
            gate_metrics.push((
                "fig5.split_train_bytes".to_string(),
                Metric {
                    value: bs as f64,
                    tol: 0.15,
                    higher_better: false,
                },
            ));
        }
        rows.push(vec![
            total.to_string(),
            format!("{:.0}", total as f64 / ts),
            format!("{:.0}", total as f64 / tc),
            format!("{:.2}x", ts.recip() / tc.recip()),
            format!("{:.1} MB", bs as f64 / 1e6),
            format!("{:.1} MB", bcat as f64 / 1e6),
        ]);
    }
    print_table(
        "Fig 5b: training (physics-informed step)",
        &[
            "points",
            "split pts/s",
            "concat pts/s",
            "speedup",
            "split mem",
            "concat mem",
        ],
        &rows,
    );

    println!(
        "\nshape check vs paper: split sustains higher points/s at every batch size\n\
         and its graph bytes grow O(4N + 2q) instead of O(q(4N+2)), which is what\n\
         lets the paper's optimized model reach 50k-point batches while the\n\
         baseline OOMs at 10k."
    );
    emit_metrics(&gate_metrics);
    finish_trace(trace);
}
