//! **Figure 9b**: weak scaling of the distributed MFP — fixed per-rank
//! subdomain, fixed iteration count, growing rank count.
//!
//! The paper fixes a 16×8 spatial (1024×512) subdomain per GPU and runs
//! 2000 iterations: compute time stays flat while communication time rises
//! from 2 to 8 ranks (neighbor count grows from 3 to 8) and then plateaus.
//! This binary fixes a per-rank block, runs a fixed iteration budget and
//! reports measured compute, measured pack time ("Boundaries IO") and
//! alpha-beta-modeled communication per rank count.
//!
//! ```text
//! cargo run -p mf-bench --release --bin repro_fig9b [--full]
//! ```

use mf_bench::*;
use mf_dist::{CartesianGrid, PerfModel, RankOrder};
use mf_mfp::{run_distributed, DistMfpConfig, DomainSpec, OracleSolver};

fn main() {
    let trace = init_telemetry();
    let spec = bench_spec();
    // Per-rank block of atomic subdomains (paper: 16x8 spatial per GPU).
    let (bx, by) = if full_scale() { (8, 4) } else { (4, 2) };
    let iters = if full_scale() { 200 } else { 50 };
    let ranks: Vec<usize> = if full_scale() {
        vec![1, 2, 4, 8, 16, 32]
    } else {
        vec![1, 2, 4, 8, 16]
    };

    println!("Figure 9b reproduction: weak scaling, {bx}x{by} atomic subdomains per rank,");
    println!("{iters} iterations (paper: 1024x512 per GPU, 2000 iterations)\n");

    let oracle = OracleSolver::new(spec, 1e-9);
    let model = PerfModel::a30_cluster();
    let mpi4py = PerfModel::mpi4py_serialized();

    let mut rows = Vec::new();
    for &p in &ranks {
        // Grow the global domain with the processor grid.
        let grid = CartesianGrid::square_for(p, RankOrder::RowMajor);
        let domain = DomainSpec::new(spec, bx * grid.px(), by * grid.py());
        let bc = gp_boundary(&domain, 17);
        let res = run_distributed(
            &oracle,
            &domain,
            &bc,
            p,
            &DistMfpConfig {
                max_iters: iters,
                tol: 0.0,
                ..Default::default()
            },
        );
        let compute = res
            .reports
            .iter()
            .map(|r| r.compute_seconds)
            .fold(0.0, f64::max);
        let io = res
            .reports
            .iter()
            .map(|r| r.pack_seconds)
            .fold(0.0, f64::max);
        let comm = res
            .reports
            .iter()
            .map(|r| model.time_for(&r.halo))
            .fold(0.0, f64::max);
        let comm_ser = res
            .reports
            .iter()
            .map(|r| mpi4py.time_for(&r.halo))
            .fold(0.0, f64::max);
        let max_neighbors = (0..p).map(|r| grid.neighbors(r).len()).max().unwrap_or(0);
        rows.push(vec![
            p.to_string(),
            format!("{}x{}", domain.nx(), domain.ny()),
            max_neighbors.to_string(),
            fmt_secs(compute),
            fmt_secs(io),
            fmt_secs(comm),
            fmt_secs(comm_ser),
        ]);
    }
    print_table(
        "Fig 9b: weak scaling (fixed per-rank block)",
        &[
            "ranks",
            "global grid",
            "max nbrs",
            "compute",
            "bound. IO",
            "comm (IB)",
            "comm (mpi4py)",
        ],
        &rows,
    );
    println!(
        "\nshape check vs paper: compute stays flat (per-rank work is constant);\n\
         communication rises while the neighbor count grows from 0 (P=1) through\n\
         3 (P=2) to 8 (P>=16, interior ranks appear) and then plateaus — the\n\
         paper saw the same ~4x rise from 2 to 8 GPUs followed by a plateau,\n\
         dominated by per-message latency (hence the mpi4py column)."
    );
    finish_trace(trace);
}
