//! Shared harness utilities for the paper-reproduction binaries.
//!
//! Each `repro_*` binary in `src/bin/` regenerates one table or figure of
//! the paper (see DESIGN.md for the index and EXPERIMENTS.md for recorded
//! results). All binaries accept `--full` to scale from the laptop-scale
//! defaults toward paper-scale problem sizes.

pub mod gate;

use mf_data::{Dataset, SubdomainSpec};
use mf_gp::BoundarySampler;
use mf_mfp::DomainSpec;
use mf_nn::{SdNet, SdNetConfig};
use mf_numerics::boundary::grid_with_boundary;
use mf_numerics::{solve_dirichlet, Poisson};
use mf_opt::LrSchedule;
use mf_tensor::Tensor;
use mf_train::trainer::{train_single, OptKind, TrainConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Whether the binary was invoked with `--full` (paper-leaning scale).
pub fn full_scale() -> bool {
    std::env::args().any(|a| a == "--full")
}

/// Handle the shared `--json PATH` flag: the path the binary should merge
/// its gate metrics into (see [`gate::write_metrics`]), or `None`.
pub fn json_out() -> Option<String> {
    std::env::args().skip_while(|a| a != "--json").nth(1)
}

/// Merge gate metrics into the `--json PATH` file, if one was given.
pub fn emit_metrics(metrics: &[(String, gate::Metric)]) {
    let Some(path) = json_out() else { return };
    match gate::write_metrics(&path, metrics) {
        Ok(()) => eprintln!("wrote {} metric(s) to {path}", metrics.len()),
        Err(e) => eprintln!("failed to write metrics to {path}: {e}"),
    }
}

/// Handle the shared observability flags, identically across every
/// `repro_*` binary:
///
/// * `--trace PATH` — enable span tracing; returns the output path to
///   hand to [`finish_trace`]. The binaries time their measured regions
///   with [`mf_telemetry::timed`], so the printed tables and the
///   exported trace come from the same spans.
/// * `--metrics` — print the merged telemetry report to stderr at exit.
/// * `--watch` — periodic rendered reports (loss curve, step-time
///   sparklines, residual heatmap) to stderr while running.
/// * `--metrics-addr HOST:PORT` (or `MF_METRICS_ADDR`) — serve live
///   metrics over HTTP for the lifetime of the process: `GET /metrics`
///   (OpenMetrics text) and `GET /snapshot` (per-rank JSON).
/// * `--profile off` (or `MF_PROFILE=off`) — disable the continuous
///   profiler's zone timers (on by default).
/// * `MF_OBSERVE` — see [`mf_observe::init_from_env`] (post-mortem
///   bundles, watch mode, recorder off).
pub fn init_telemetry() -> Option<String> {
    mf_observe::init_from_env();
    mf_profile::init_from_env();
    if std::env::args()
        .skip_while(|a| a != "--profile")
        .nth(1)
        .is_some_and(|v| v == "off")
    {
        mf_profile::set_enabled(false);
    }
    if std::env::args().any(|a| a == "--metrics") {
        mf_telemetry::set_metrics_report(true);
    }
    if std::env::args().any(|a| a == "--watch") {
        mf_observe::set_watch(true);
    }
    let addr = std::env::args()
        .skip_while(|a| a != "--metrics-addr")
        .nth(1);
    if let Some(server) = mf_profile::MetricsServer::from_flag_or_env(addr.as_deref()) {
        // Repro binaries exit when done; keep the exposition thread up
        // until then so late scrapes still see the final numbers.
        server.run_forever();
    }
    let path = std::env::args().skip_while(|a| a != "--trace").nth(1);
    if path.is_some() {
        mf_telemetry::set_tracing(true);
    }
    path
}

/// Write the spans (and cross-rank flow events) recorded since
/// [`init_telemetry`] to `path` — Chrome `trace_event` JSON by default,
/// JSON Lines when the path ends in `.jsonl`. No-op when `--trace` was
/// not given.
pub fn finish_trace(path: Option<String>) {
    let Some(path) = path else { return };
    mf_telemetry::flush_thread();
    let spans = mf_telemetry::drain_spans();
    let flows = mf_telemetry::drain_flows();
    let mut body = Vec::new();
    let written = if path.ends_with(".jsonl") {
        mf_telemetry::write_jsonl(&spans, &mut body)
    } else {
        mf_telemetry::write_chrome_trace_with_flows(&spans, &flows, &mut body)
    };
    match written.and_then(|()| std::fs::write(&path, body)) {
        Ok(()) => eprintln!(
            "wrote {} span(s) and {} flow event(s) to {path}",
            spans.len(),
            flows.len()
        ),
        Err(e) => eprintln!("failed to write trace: {e}"),
    }
}

/// The subdomain geometry used by the reproduction runs: 0.5×0.5 spatial,
/// 9 points per side by default, 17 with `--full` (the paper uses 32).
pub fn bench_spec() -> SubdomainSpec {
    if full_scale() {
        SubdomainSpec {
            m: 17,
            spatial: 0.5,
        }
    } else {
        SubdomainSpec { m: 9, spatial: 0.5 }
    }
}

/// SDNet architecture used across the reproduction binaries.
pub fn bench_net_config(spec: SubdomainSpec) -> SdNetConfig {
    let mut cfg = SdNetConfig::small(spec.boundary_len());
    cfg.conv_channels = vec![4];
    cfg.hidden = if full_scale() {
        vec![64, 64, 64]
    } else {
        vec![48, 48, 48]
    };
    cfg
}

/// Train an SDNet for the reproduction runs. `samples`/`epochs` control
/// the quality-vs-time tradeoff; returns the trained network and the
/// final validation MSE.
pub fn train_sdnet(spec: SubdomainSpec, samples: usize, epochs: usize, seed: u64) -> (SdNet, f64) {
    let dataset = Dataset::generate(spec, samples, seed);
    let (train, val) = dataset.split(0.9);
    let mut net = SdNet::new(bench_net_config(spec), &mut ChaCha8Rng::seed_from_u64(seed));
    let steps = epochs * (train.len() / 8).max(1);
    let cfg = TrainConfig {
        epochs,
        batch_size: 8,
        qd: 48,
        qc: 16,
        pde_weight: 0.02,
        schedule: LrSchedule {
            max_lr: 8e-3,
            ..LrSchedule::paper_default(steps)
        },
        opt: OptKind::Adam,
        seed,
        clip_norm: None,
    };
    let logs = train_single(&mut net, &train, &val, &cfg);
    (net, logs.last().map(|l| l.val_mse).unwrap_or(f64::NAN))
}

/// A GP-sampled boundary condition for a solve domain.
pub fn gp_boundary(domain: &DomainSpec, seed: u64) -> Tensor {
    let mut sampler = BoundarySampler::new(domain.boundary_len(), (0.4, 0.8), (0.5, 1.0), true);
    sampler.sample(&mut ChaCha8Rng::seed_from_u64(seed))
}

/// Ground-truth solution of the global BVP via multigrid/SOR.
pub fn reference_solution(domain: &DomainSpec, bc: &Tensor) -> Tensor {
    let guess = grid_with_boundary(domain.ny(), domain.nx(), bc);
    let (sol, stats) = solve_dirichlet(
        &Poisson::laplace(domain.ny(), domain.nx(), domain.h()),
        &guess,
        1e-9,
    );
    assert!(stats.converged, "reference solve failed: {stats:?}");
    sol
}

/// Pretty-print a results table: header then rows of equal arity.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let line = |cells: Vec<String>| {
        cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!("{}", line(header.iter().map(|s| s.to_string()).collect()));
    for row in rows {
        println!("{}", line(row.clone()));
    }
}

/// Format seconds compactly.
pub fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.2}s")
    } else if s >= 1e-3 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{:.1}us", s * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_spec_is_odd_and_small() {
        let s = bench_spec();
        assert!(s.m % 2 == 1);
        assert!(s.m >= 9);
    }

    #[test]
    fn gp_boundary_matches_domain_perimeter() {
        let d = DomainSpec::new(bench_spec(), 2, 1);
        let bc = gp_boundary(&d, 0);
        assert_eq!(bc.numel(), d.boundary_len());
    }

    #[test]
    fn fmt_secs_ranges() {
        assert_eq!(fmt_secs(2.0), "2.00s");
        assert_eq!(fmt_secs(0.002), "2.00ms");
        assert_eq!(fmt_secs(2e-5), "20.0us");
    }
}
