//! Benchmark-gate plumbing: a tiny JSON metrics format shared by the
//! `repro_*` binaries (writers) and the `bench_gate` binary (comparator).
//!
//! The format is deliberately minimal so it can be written and parsed
//! without a JSON dependency:
//!
//! ```json
//! {
//!   "metrics": {
//!     "table3.peak_bytes": {"value": 1234.0, "tol": 0.15, "higher_better": false}
//!   }
//! }
//! ```
//!
//! `tol` is the *relative* regression each metric may suffer against the
//! checked-in baseline before the gate fails: deterministic byte/alloc
//! counts use a tight tolerance, wall-clock throughputs a loose one (CI
//! machines are noisy). Improvements never fail the gate.
//!
//! Re-baselining: run the repro binaries with `--json BENCH_baseline.json`
//! on the main branch and commit the file (see DESIGN.md, "Memory model").

use std::fmt::Write as _;

/// One gated benchmark measurement.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Metric {
    /// Measured value.
    pub value: f64,
    /// Allowed relative regression vs baseline (e.g. `0.15` = 15%).
    pub tol: f64,
    /// Direction: `true` when larger is better (throughput), `false` when
    /// smaller is better (bytes, allocations, latency).
    pub higher_better: bool,
}

/// Render a metrics set as the gate's JSON document.
pub fn render_metrics(metrics: &[(String, Metric)]) -> String {
    let mut s = String::from("{\n  \"metrics\": {\n");
    for (i, (name, m)) in metrics.iter().enumerate() {
        let comma = if i + 1 < metrics.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "    \"{name}\": {{\"value\": {}, \"tol\": {}, \"higher_better\": {}}}{comma}",
            m.value, m.tol, m.higher_better
        );
    }
    s.push_str("  }\n}\n");
    s
}

/// Append `metrics` to the JSON file at `path` (merging with any metrics
/// already there; later writers win on name collisions). Lets several
/// repro binaries contribute to one `BENCH_pr.json`.
pub fn write_metrics(path: &str, metrics: &[(String, Metric)]) -> std::io::Result<()> {
    let mut all = match std::fs::read_to_string(path) {
        Ok(s) => parse_metrics(&s).unwrap_or_default(),
        Err(_) => Vec::new(),
    };
    for (name, m) in metrics {
        if let Some(slot) = all.iter_mut().find(|(n, _)| n == name) {
            slot.1 = *m;
        } else {
            all.push((name.clone(), *m));
        }
    }
    std::fs::write(path, render_metrics(&all))
}

/// Parse a metrics document produced by [`render_metrics`] (tolerant of
/// whitespace differences, intolerant of anything structurally else).
pub fn parse_metrics(s: &str) -> Result<Vec<(String, Metric)>, String> {
    let body = s
        .split_once("\"metrics\"")
        .ok_or("missing \"metrics\" key")?
        .1;
    let mut out = Vec::new();
    // Each entry looks like: "name": {"value": V, "tol": T, "higher_better": B}
    let mut rest = body;
    while let Some(q) = rest.find('"') {
        let after = &rest[q + 1..];
        let Some(qe) = after.find('"') else { break };
        let name = &after[..qe];
        let tail = &after[qe + 1..];
        let Some(open) = tail.find('{') else { break };
        let Some(close) = tail[open..].find('}') else {
            return Err(format!("unterminated object for metric {name}"));
        };
        let obj = &tail[open + 1..open + close];
        let field = |key: &str| -> Result<&str, String> {
            let v = obj
                .split_once(&format!("\"{key}\""))
                .ok_or_else(|| format!("metric {name}: missing {key}"))?
                .1;
            let v = v.trim_start_matches([':', ' ']);
            Ok(v.split([',', '}']).next().unwrap_or("").trim())
        };
        let value: f64 = field("value")?
            .parse()
            .map_err(|e| format!("metric {name}: bad value: {e}"))?;
        let tol: f64 = field("tol")?
            .parse()
            .map_err(|e| format!("metric {name}: bad tol: {e}"))?;
        let higher_better: bool = field("higher_better")?
            .parse()
            .map_err(|e| format!("metric {name}: bad higher_better: {e}"))?;
        out.push((
            name.to_string(),
            Metric {
                value,
                tol,
                higher_better,
            },
        ));
        rest = &tail[open + close + 1..];
    }
    if out.is_empty() {
        return Err("no metrics found".into());
    }
    Ok(out)
}

/// Outcome of comparing one metric against its baseline.
#[derive(Clone, Debug)]
pub struct Comparison {
    /// Metric name.
    pub name: String,
    /// Baseline value.
    pub baseline: f64,
    /// Current (PR) value.
    pub current: f64,
    /// Signed relative change, positive = regression in the metric's
    /// worse direction.
    pub regression: f64,
    /// Allowed regression (the baseline's `tol`).
    pub tol: f64,
    /// True when `regression > tol`.
    pub failed: bool,
}

/// Compare current metrics against the baseline. Metrics present on only
/// one side are reported but never fail the gate (renames/additions must
/// not brick CI).
pub fn compare(
    baseline: &[(String, Metric)],
    current: &[(String, Metric)],
) -> (Vec<Comparison>, Vec<String>) {
    let mut rows = Vec::new();
    let mut unmatched: Vec<String> = Vec::new();
    for (name, b) in baseline {
        let Some((_, c)) = current.iter().find(|(n, _)| n == name) else {
            unmatched.push(format!("{name} (baseline only)"));
            continue;
        };
        // Relative change in the "worse" direction for this metric.
        let denom = b.value.abs().max(1e-12);
        let delta = (c.value - b.value) / denom;
        let regression = if b.higher_better { -delta } else { delta };
        rows.push(Comparison {
            name: name.clone(),
            baseline: b.value,
            current: c.value,
            regression,
            tol: b.tol,
            failed: regression > b.tol,
        });
    }
    for (name, _) in current {
        if !baseline.iter().any(|(n, _)| n == name) {
            unmatched.push(format!("{name} (current only)"));
        }
    }
    (rows, unmatched)
}

/// The baseline file's git provenance: `<short-hash> <date> (<subject>)`
/// of the last commit touching it, so the gate summary says *which*
/// baseline a PR was judged against. Returns a placeholder when the file
/// is untracked or git is unavailable — provenance must never fail the
/// gate.
pub fn baseline_provenance(path: &str) -> String {
    let out = std::process::Command::new("git")
        .args([
            "log",
            "-1",
            "--format=%h %ad %s",
            "--date=short",
            "--",
            path,
        ])
        .output();
    match out {
        Ok(o) if o.status.success() => {
            let line = String::from_utf8_lossy(&o.stdout).trim().to_string();
            if line.is_empty() {
                format!("{path}: not tracked in git")
            } else {
                line
            }
        }
        _ => format!("{path}: git provenance unavailable"),
    }
}

/// Render comparisons as a GitHub-flavored markdown table. `provenance`
/// (from [`baseline_provenance`]) records which baseline commit the
/// comparison used.
pub fn render_markdown(rows: &[Comparison], unmatched: &[String], provenance: &str) -> String {
    let mut s = String::from("## Bench gate\n\n");
    if !provenance.is_empty() {
        let _ = writeln!(s, "Baseline: `{provenance}`\n");
    }
    s.push_str("| metric | baseline | PR | change | budget | status |\n");
    s.push_str("|---|---:|---:|---:|---:|:---:|\n");
    for r in rows {
        let _ = writeln!(
            s,
            "| {} | {:.4} | {:.4} | {:+.1}% | {:.0}% | {} |",
            r.name,
            r.baseline,
            r.current,
            // Positive change% = regression (direction-normalized).
            r.regression * 100.0,
            r.tol * 100.0,
            if r.failed { "❌ regression" } else { "✅" }
        );
    }
    if !unmatched.is_empty() {
        s.push_str("\nUnmatched metrics (not gated): ");
        s.push_str(&unmatched.join(", "));
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(value: f64, tol: f64, higher_better: bool) -> Metric {
        Metric {
            value,
            tol,
            higher_better,
        }
    }

    #[test]
    fn render_parse_roundtrip() {
        let metrics = vec![
            ("a.bytes".to_string(), m(1234.5, 0.15, false)),
            ("b.pts_per_s".to_string(), m(9.25e6, 0.5, true)),
        ];
        let parsed = parse_metrics(&render_metrics(&metrics)).unwrap();
        assert_eq!(parsed, metrics);
    }

    #[test]
    fn write_merges_into_existing_file() {
        let dir = std::env::temp_dir().join("mf_bench_gate_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("merge.json");
        let path = path.to_str().unwrap();
        let _ = std::fs::remove_file(path);
        write_metrics(path, &[("x".into(), m(1.0, 0.1, false))]).unwrap();
        write_metrics(
            path,
            &[
                ("x".into(), m(2.0, 0.1, false)),
                ("y".into(), m(3.0, 0.2, true)),
            ],
        )
        .unwrap();
        let all = parse_metrics(&std::fs::read_to_string(path).unwrap()).unwrap();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].1.value, 2.0);
        assert_eq!(all[1].1.value, 3.0);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn compare_is_direction_aware() {
        let base = vec![
            ("bytes".to_string(), m(100.0, 0.15, false)),
            ("tput".to_string(), m(100.0, 0.15, true)),
        ];
        // bytes went UP 20% (regression), tput went UP 20% (improvement).
        let cur = vec![
            ("bytes".to_string(), m(120.0, 0.15, false)),
            ("tput".to_string(), m(120.0, 0.15, true)),
        ];
        let (rows, unmatched) = compare(&base, &cur);
        assert!(unmatched.is_empty());
        assert!(rows[0].failed, "byte growth must fail");
        assert!(!rows[1].failed, "throughput growth must pass");
        // Flip: bytes down, tput down 20%.
        let cur = vec![
            ("bytes".to_string(), m(80.0, 0.15, false)),
            ("tput".to_string(), m(80.0, 0.15, true)),
        ];
        let (rows, _) = compare(&base, &cur);
        assert!(!rows[0].failed);
        assert!(rows[1].failed, "throughput drop must fail");
    }

    #[test]
    fn unmatched_metrics_do_not_fail() {
        let base = vec![("old".to_string(), m(1.0, 0.1, false))];
        let cur = vec![("new".to_string(), m(1.0, 0.1, false))];
        let (rows, unmatched) = compare(&base, &cur);
        assert!(rows.is_empty());
        assert_eq!(unmatched.len(), 2);
    }

    #[test]
    fn markdown_has_a_row_per_metric() {
        let base = vec![("bytes".to_string(), m(100.0, 0.15, false))];
        let cur = vec![("bytes".to_string(), m(90.0, 0.15, false))];
        let (rows, unmatched) = compare(&base, &cur);
        let md = render_markdown(&rows, &unmatched, "abc1234 2026-08-08 seed baseline");
        assert!(md.contains("| bytes |"));
        assert!(md.contains("✅"));
        assert!(
            md.contains("Baseline: `abc1234 2026-08-08 seed baseline`"),
            "provenance line missing:\n{md}"
        );
    }

    #[test]
    fn provenance_never_panics_on_unknown_paths() {
        let p = baseline_provenance("definitely/not/a/file.json");
        assert!(!p.is_empty());
    }
}
