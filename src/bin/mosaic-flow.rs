//! `mosaic-flow` — command-line interface to the Mosaic Flow library.
//!
//! ```text
//! mosaic-flow train  --samples 200 --epochs 60 --m 9 --out model.mfn [--devices P]
//! mosaic-flow info   --model model.mfn
//! mosaic-flow eval   --model model.mfn --samples 20
//! mosaic-flow solve  --domain 2x1 [--model model.mfn | --oracle]
//!                    [--boundary sin | gp:SEED] [--ranks P] [--coarse-init]
//!                    [--no-plan] [--out grid.csv]
//!                    [--fault-seed N] [--drop-rate R] [--crash-rank K [--crash-after S]]
//! ```
//!
//! `solve` prints convergence info and the MAE against a direct multigrid
//! reference; `--out` writes the dense solution grid as CSV (row 0 =
//! bottom edge). Models run on the compiled inference plan (`mf-infer`,
//! bitwise-identical to the graph path); `--no-plan` forces the
//! graph-based solver.
//!
//! Observability flags (any subcommand):
//!
//! * `--metrics` — print a telemetry summary to stderr at exit;
//!   distributed regions (`--ranks P`, `--devices P`) print one report
//!   merged across ranks.
//! * `--trace PATH` — record spans and write a Chrome `trace_event` JSON
//!   file (open in `chrome://tracing` / Perfetto); a `.jsonl` suffix
//!   selects the JSON-Lines format instead. Distributed runs include
//!   cross-rank flow events connecting each send to its receive.
//! * `--watch` — periodic rendered progress reports (loss curve,
//!   step-time sparklines, residual heatmap, live series rates) on
//!   stderr.
//! * `--metrics-addr HOST:PORT` (or `MF_METRICS_ADDR`) — serve live
//!   metrics over HTTP while the command runs: `GET /metrics` is
//!   OpenMetrics text, `GET /snapshot` is per-rank JSON.
//! * `--profile off` — disable the continuous profiler's zone timers
//!   (also `MF_PROFILE=off`); they are on by default and cost ≤3% (CI
//!   gated).
//! * `MF_OBSERVE=dump[:DIR]|watch|off` — enable post-mortem bundles on
//!   failure (`dump`), watch mode, or disable the flight recorder.

use mosaic_flow::numerics::boundary::boundary_from_fn;
use mosaic_flow::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;
use std::process::ExitCode;

fn parse_flags(args: &[String]) -> (Vec<String>, HashMap<String, String>) {
    let mut positional = Vec::new();
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(name) = args[i].strip_prefix("--") {
            // Boolean flags have no value or are followed by another flag.
            if i + 1 < args.len() && !args[i + 1].starts_with("--") {
                flags.insert(name.to_string(), args[i + 1].clone());
                i += 2;
            } else {
                flags.insert(name.to_string(), "true".to_string());
                i += 1;
            }
        } else {
            positional.push(args[i].clone());
            i += 1;
        }
    }
    (positional, flags)
}

fn get<T: std::str::FromStr>(flags: &HashMap<String, String>, key: &str, default: T) -> T {
    flags
        .get(key)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: mosaic-flow <train|info|eval|solve> [flags]\n\
         \n\
         train --samples N --epochs E [--m 9] [--devices P] --out model.mfn\n\
         info  --model model.mfn\n\
         eval  --model model.mfn [--samples 20] [--seed 1]\n\
         solve --domain SXxSY [--model model.mfn | --oracle] [--boundary sin|gp:SEED]\n\
               [--ranks P] [--coarse-init] [--no-plan] [--out grid.csv]\n\
               [--fault-seed N] [--drop-rate R] [--crash-rank K [--crash-after S]]\n\
         \n\
         observability (any subcommand):\n\
           --metrics            print a telemetry summary to stderr at exit\n\
           --metrics-addr H:P   serve GET /metrics (OpenMetrics) and /snapshot (JSON)\n\
           --trace PATH         write a Chrome trace_event JSON (.jsonl for JSON-Lines)\n\
           --watch              periodic rendered progress reports on stderr\n\
           --profile off        disable the zone profiler (on by default)\n\
           MF_OBSERVE=...       dump[:DIR] post-mortem bundles | watch | off (recorder)\n\
           MF_METRICS_ADDR=H:P  same as --metrics-addr\n\
           MF_PROFILE=off       same as --profile off"
    );
    ExitCode::FAILURE
}

fn cmd_train(flags: &HashMap<String, String>) -> ExitCode {
    let m: usize = get(flags, "m", 9);
    let samples: usize = get(flags, "samples", 200);
    let epochs: usize = get(flags, "epochs", 60);
    let devices: usize = get(flags, "devices", 1);
    let seed: u64 = get(flags, "seed", 0);
    let Some(out) = flags.get("out") else {
        eprintln!("train: --out <path> is required");
        return ExitCode::FAILURE;
    };
    let spec = SubdomainSpec { m, spatial: 0.5 };
    eprintln!("generating {samples} samples on a {m}x{m} subdomain ...");
    let dataset = Dataset::generate(spec, samples, seed);
    let (train, val) = dataset.split(0.9);

    let mut cfg = SdNetConfig::small(spec.boundary_len());
    cfg.conv_channels = vec![4];
    cfg.hidden = vec![48, 48, 48];
    let template = SdNet::new(cfg, &mut ChaCha8Rng::seed_from_u64(seed));
    let steps = epochs * (train.len() / devices / 8).max(1);
    let tc = TrainConfig {
        epochs,
        batch_size: 8,
        qd: 48,
        qc: 16,
        pde_weight: 0.02,
        schedule: LrSchedule {
            max_lr: 8e-3,
            ..LrSchedule::paper_default(steps)
        },
        opt: if devices > 1 {
            OptKind::Lamb(0.0)
        } else {
            OptKind::Adam
        },
        seed,
        clip_norm: None,
    };
    eprintln!("training for {epochs} epochs on {devices} simulated device(s) ...");
    let net = if devices == 1 {
        let mut net = template;
        let logs = train_single(&mut net, &train, &val, &tc);
        eprintln!("final val MSE: {:.5}", logs.last().unwrap().val_mse);
        net
    } else {
        let res = train_ddp(devices, &template, &train, &val, &tc, GradSync::Fused);
        eprintln!("final val MSE: {:.5}", res.logs.last().unwrap().val_mse);
        let mut net = template;
        net.params.unflatten(&res.params_flat);
        net
    };
    if let Err(e) = net.save(out) {
        eprintln!("failed to save model: {e}");
        return ExitCode::FAILURE;
    }
    println!("saved {} parameters to {out}", net.count_params());
    ExitCode::SUCCESS
}

fn cmd_info(flags: &HashMap<String, String>) -> ExitCode {
    let Some(path) = flags.get("model") else {
        eprintln!("info: --model <path> is required");
        return ExitCode::FAILURE;
    };
    match SdNet::load(path) {
        Ok(net) => {
            let c = net.config();
            println!("SDNet model: {path}");
            println!(
                "  boundary walk : {} points (m = {})",
                c.boundary_len,
                c.boundary_len / 4 + 1
            );
            println!(
                "  conv embedding: {:?} channels, kernel {}",
                c.conv_channels, c.conv_kernel
            );
            println!(
                "  trunk         : {:?} ({:?}, {:?} embedding)",
                c.hidden, c.activation, c.embedding
            );
            println!("  coord extent  : {}", c.coord_extent);
            println!("  parameters    : {}", net.count_params());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("failed to load model: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_eval(flags: &HashMap<String, String>) -> ExitCode {
    let Some(path) = flags.get("model") else {
        eprintln!("eval: --model <path> is required");
        return ExitCode::FAILURE;
    };
    let samples: usize = get(flags, "samples", 20);
    let seed: u64 = get(flags, "seed", 1);
    let net = match SdNet::load(path) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("failed to load model: {e}");
            return ExitCode::FAILURE;
        }
    };
    let m = net.config().boundary_len / 4 + 1;
    let spec = SubdomainSpec {
        m,
        spatial: net.config().coord_extent,
    };
    let ds = Dataset::generate(spec, samples, seed);
    println!(
        "val MSE on {} fresh samples: {:.6}",
        samples,
        evaluate_mse(&net, &ds)
    );
    ExitCode::SUCCESS
}

fn cmd_solve(flags: &HashMap<String, String>) -> ExitCode {
    let domain_str = flags
        .get("domain")
        .cloned()
        .unwrap_or_else(|| "2x1".to_string());
    let Some((sx, sy)) = domain_str
        .split_once('x')
        .and_then(|(a, b)| Some((a.parse::<usize>().ok()?, b.parse::<usize>().ok()?)))
    else {
        eprintln!("solve: --domain must look like 4x2 (atomic subdomains)");
        return ExitCode::FAILURE;
    };
    let ranks: usize = get(flags, "ranks", 1);
    let coarse_init = flags.contains_key("coarse-init");

    // Fault injection: deterministic from --fault-seed. A crashed or
    // unrecoverable run fails the command; with MF_OBSERVE=dump[:DIR]
    // the cluster writes a post-mortem bundle on the way down.
    let plan = {
        let mut plan = FaultPlan::lossy(
            get(flags, "fault-seed", 0u64),
            get(flags, "drop-rate", 0.0f64),
        );
        if let Some(r) = flags.get("crash-rank") {
            let Ok(rank) = r.parse() else {
                eprintln!("solve: --crash-rank expects a rank index");
                return ExitCode::FAILURE;
            };
            plan.crash = Some(CrashAt {
                rank,
                after_sends: get(flags, "crash-after", 10),
            });
        }
        plan
    };
    if plan.is_active() && ranks == 1 {
        eprintln!("solve: fault injection needs --ranks > 1");
        return ExitCode::FAILURE;
    }

    // Solver selection. Models run on the compiled inference plan
    // (graph-free, bitwise-identical to the graph path) unless the
    // network cannot be lowered or --no-plan asks for the graph solver.
    enum Chosen {
        Oracle(OracleSolver),
        Neural(Box<NeuralSolver>),
        Plan(Box<PlanSolver>),
    }
    let (spec, chosen) = if let Some(path) = flags.get("model") {
        let net = match SdNet::load(path) {
            Ok(n) => n,
            Err(e) => {
                eprintln!("failed to load model: {e}");
                return ExitCode::FAILURE;
            }
        };
        let m = net.config().boundary_len / 4 + 1;
        let spec = SubdomainSpec {
            m,
            spatial: net.config().coord_extent,
        };
        let use_plan = !flags.contains_key("no-plan") && InferencePlan::supports(&net);
        if use_plan {
            (spec, Chosen::Plan(Box::new(PlanSolver::new(net, spec))))
        } else {
            (spec, Chosen::Neural(Box::new(NeuralSolver::new(net, spec))))
        }
    } else {
        let m: usize = get(flags, "m", 9);
        let spec = SubdomainSpec { m, spatial: 0.5 };
        (spec, Chosen::Oracle(OracleSolver::new(spec, 1e-9)))
    };

    let domain = DomainSpec::new(spec, sx, sy);
    let boundary_str = flags
        .get("boundary")
        .cloned()
        .unwrap_or_else(|| "sin".to_string());
    let bc = if let Some(seed) = boundary_str.strip_prefix("gp:") {
        let seed: u64 = seed.parse().unwrap_or(0);
        let mut sampler = BoundarySampler::new(domain.boundary_len(), (0.4, 0.8), (0.5, 1.0), true);
        sampler.sample(&mut ChaCha8Rng::seed_from_u64(seed))
    } else {
        boundary_from_fn(domain.ny(), domain.nx(), |t| {
            (2.0 * std::f64::consts::PI * t).sin()
        })
    };

    // Reference for the MAE report.
    let reference = {
        use mosaic_flow::numerics::boundary::grid_with_boundary;
        use mosaic_flow::numerics::{solve_dirichlet, Poisson};
        let guess = grid_with_boundary(domain.ny(), domain.nx(), &bc);
        let (sol, st) = solve_dirichlet(
            &Poisson::laplace(domain.ny(), domain.nx(), domain.h()),
            &guess,
            1e-9,
        );
        if !st.converged {
            eprintln!("warning: reference solve did not fully converge");
        }
        sol
    };

    // One driver for any solver; oracle runs get tighter tolerances,
    // passed as a `(max_iters, tol)` pair.
    fn run_solver<S: SubdomainSolver>(
        s: &S,
        domain: DomainSpec,
        bc: &Tensor,
        ranks: usize,
        coarse_init: bool,
        plan: &FaultPlan,
        (max_iters, tol): (usize, f64),
    ) -> Result<(Tensor, usize, bool), ClusterError> {
        if ranks == 1 {
            let r = Mfp::new(s, domain).run(
                bc,
                &MfpConfig {
                    max_iters,
                    tol,
                    coarse_init,
                    ..Default::default()
                },
            );
            Ok((r.grid, r.iterations, r.converged))
        } else {
            let cfg = DistMfpConfig {
                max_iters,
                tol,
                coarse_init,
                plan: plan.clone(),
                ..Default::default()
            };
            try_run_distributed(s, &domain, bc, ranks, &cfg)
                .map(|r| (r.grid, r.iterations, r.converged))
        }
    }

    let ran = match &chosen {
        Chosen::Oracle(s) => run_solver(s, domain, &bc, ranks, coarse_init, &plan, (2000, 1e-6)),
        Chosen::Neural(s) => run_solver(
            s.as_ref(),
            domain,
            &bc,
            ranks,
            coarse_init,
            &plan,
            (500, 1e-5),
        ),
        Chosen::Plan(s) => run_solver(
            s.as_ref(),
            domain,
            &bc,
            ranks,
            coarse_init,
            &plan,
            (500, 1e-5),
        ),
    };
    let (grid, iterations, converged) = match ran {
        Ok(r) => r,
        Err(e) => {
            eprintln!("solve: cluster failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!(
        "solved {}x{} domain ({}x{} grid) on {} rank(s): {} iterations, converged = {}",
        sx,
        sy,
        domain.nx(),
        domain.ny(),
        ranks,
        iterations,
        converged
    );
    println!(
        "MAE vs direct multigrid solve: {:.6}",
        grid.mean_abs_diff(&reference)
    );

    if let Some(out) = flags.get("out") {
        let mut csv = String::new();
        for j in 0..grid.rows() {
            let row: Vec<String> = grid.row(j).iter().map(|v| format!("{v:.8}")).collect();
            csv.push_str(&row.join(","));
            csv.push('\n');
        }
        if let Err(e) = std::fs::write(out, csv) {
            eprintln!("failed to write grid: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {} to {out}", domain_str);
    }
    ExitCode::SUCCESS
}

/// Flush telemetry at process exit: print the main-thread metrics summary
/// (distributed regions already print a merged per-rank report from inside
/// the rank closures) and write the span trace if `--trace` was given.
fn finish_telemetry(trace_path: Option<&str>) {
    use mosaic_flow::telemetry as tel;
    if tel::metrics_report_enabled() {
        let snap = tel::snapshot();
        // Distributed regions print a merged per-rank report from inside the
        // rank closures; only add a main-thread report if it saw activity.
        let active = snap.metrics.iter().any(|(_, v)| match v {
            tel::MetricValue::Counter(c) => *c > 0,
            tel::MetricValue::Gauge(g) => *g != 0.0,
            tel::MetricValue::Histogram(h) => h.count > 0,
        });
        if active {
            eprint!("{}", tel::render_report(std::slice::from_ref(&snap)));
        }
    }
    let Some(path) = trace_path else { return };
    tel::flush_thread();
    let spans = tel::drain_spans();
    let flows = tel::drain_flows();
    let mut body = Vec::new();
    let written = if path.ends_with(".jsonl") {
        tel::write_jsonl(&spans, &mut body)
    } else {
        tel::write_chrome_trace_with_flows(&spans, &flows, &mut body)
    };
    match written.and_then(|()| std::fs::write(path, body)) {
        Ok(()) => eprintln!(
            "wrote {} span(s) and {} flow event(s) to {path}",
            spans.len(),
            flows.len()
        ),
        Err(e) => eprintln!("failed to write trace: {e}"),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (positional, flags) = parse_flags(&args);
    // MF_OBSERVE configures post-mortem bundles / watch mode / recorder
    // off; the flags below layer on top of it.
    mosaic_flow::observe::init_from_env();
    mosaic_flow::profile::init_from_env();
    if flags.get("profile").map(String::as_str) == Some("off") {
        mosaic_flow::profile::set_enabled(false);
    }
    // Live exposition: keep the server alive for the whole command; it
    // merges whatever the rank threads have published on each scrape.
    let _metrics_server = mosaic_flow::profile::MetricsServer::from_flag_or_env(
        flags.get("metrics-addr").map(String::as_str),
    );
    let trace_path = flags.get("trace").cloned();
    if trace_path.is_some() {
        mosaic_flow::telemetry::set_tracing(true);
    }
    if flags.contains_key("metrics") {
        mosaic_flow::telemetry::set_metrics_report(true);
    }
    if flags.contains_key("watch") {
        mosaic_flow::observe::set_watch(true);
    }
    let code = match positional.first().map(String::as_str) {
        Some("train") => cmd_train(&flags),
        Some("info") => cmd_info(&flags),
        Some("eval") => cmd_eval(&flags),
        Some("solve") => cmd_solve(&flags),
        _ => usage(),
    };
    finish_telemetry(trace_path.as_deref());
    code
}
