#![warn(missing_docs)]

//! **mosaic-flow** — distributed domain decomposition with scalable
//! physics-informed neural PDE solvers.
//!
//! A from-scratch Rust reproduction of *"Breaking Boundaries: Distributed
//! Domain Decomposition with Scalable Physics-Informed Neural PDE
//! Solvers"* (SC '23): data-parallel training of the SDNet subdomain
//! solver (Algorithm 1) and the distributed Mosaic Flow predictor
//! (Algorithm 2), together with every substrate they need — tensors,
//! higher-order autodiff, multigrid ground truth, Gaussian-process data
//! generation, optimizers, and a simulated message-passing cluster.
//!
//! This facade re-exports the workspace crates under stable module names:
//!
//! ```
//! use mosaic_flow::prelude::*;
//!
//! // Solve a 1x1 BVP with the numerical oracle as the subdomain solver.
//! let spec = SubdomainSpec { m: 9, spatial: 0.5 };
//! let domain = DomainSpec::new(spec, 1, 1);
//! let oracle = OracleSolver::new(spec, 1e-9);
//! let bc = mosaic_flow::numerics::boundary::boundary_from_fn(
//!     domain.ny(), domain.nx(), |t| (2.0 * std::f64::consts::PI * t).sin());
//! let result = Mfp::new(&oracle, domain).run(&bc, &MfpConfig::default());
//! assert!(result.converged);
//! ```

pub use mf_autodiff as autodiff;
pub use mf_data as data;
pub use mf_dist as dist;
pub use mf_gp as gp;
pub use mf_infer as infer;
pub use mf_mfp as mfp;
pub use mf_nn as nn;
pub use mf_numerics as numerics;
pub use mf_observe as observe;
pub use mf_opt as opt;
pub use mf_profile as profile;
pub use mf_telemetry as telemetry;
pub use mf_tensor as tensor;
pub use mf_train as train;

/// The most commonly used items in one import.
pub mod prelude {
    pub use mf_autodiff::{Graph, Var};
    pub use mf_data::{Batch, BatchSampler, Dataset, SubdomainSpec};
    pub use mf_dist::{
        CartesianGrid, Cluster, ClusterError, CommError, Communicator, CrashAt, FaultPlan,
        PerfModel, RankOrder, RetryPolicy,
    };
    pub use mf_gp::{BoundarySampler, Kernel1d, Sobol};
    pub use mf_infer::{InferencePlan, Workspace};
    pub use mf_mfp::{
        run_distributed, try_run_distributed, DistMfpConfig, DomainSpec, Mfp, MfpConfig,
        NeuralSolver, OracleSolver, PlanSolver, SubdomainSolver,
    };
    pub use mf_nn::{Activation, EmbeddingKind, SdNet, SdNetConfig};
    pub use mf_opt::{Adam, AdamW, Lamb, LrSchedule, Optimizer, Sgd};
    pub use mf_tensor::Tensor;
    pub use mf_train::trainer::OptKind;
    pub use mf_train::{
        evaluate_mse, train_ddp, train_ddp_resumable, train_single, CheckpointConfig, GradSync,
        TrainConfig,
    };
}
