#!/usr/bin/env bash
# Regenerate every paper table/figure and the ablations, capturing outputs
# under results/. Pass --full to scale toward paper sizes.
set -u
cd "$(dirname "$0")/.."
mkdir -p results
FLAG="${1:-}"
for bin in repro_fig1 repro_table3 repro_fig5 repro_fig6 repro_fig7 \
           repro_fig8 repro_fig9a repro_fig9b repro_ablations; do
    echo "=== $bin $FLAG ==="
    cargo run -p mf-bench --release --bin "$bin" -- $FLAG \
        > "results/${bin}${FLAG:+_full}.txt" 2>&1
    tail -3 "results/${bin}${FLAG:+_full}.txt"
done
echo "outputs in results/"
